// Package profdiff compares two obs.Profiles phase by phase, so a makespan
// regression flagged by obs/regress can be localized: which phase's
// compute, communication or wait time moved, whether its load imbalance
// drifted, and how much of the change is critical-path (unrecoverable by
// scheduling) versus slack. This is the per-phase attribution half of the
// regression harness; obs/regress answers *whether* a run drifted, profdiff
// answers *where*.
package profdiff

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"genmp/internal/obs"
	"genmp/internal/obs/regress"
)

// PhaseDelta is the comparison of one phase label across the two runs.
// Deltas are new − old; for phases present on only one side the missing
// side's PhaseProfile is the zero value and Verdict is Added or Removed.
type PhaseDelta struct {
	Label      string           `json:"label"`
	Old        obs.PhaseProfile `json:"old"`
	New        obs.PhaseProfile `json:"new"`
	DCompute   float64          `json:"d_compute_sec"`
	DComm      float64          `json:"d_comm_sec"`
	DWait      float64          `json:"d_wait_sec"`
	DMaxTotal  float64          `json:"d_max_total_sec"`
	DImbalance float64          `json:"d_imbalance"`
	DMsgs      int              `json:"d_msgs"`
	DBytes     int              `json:"d_bytes"`
	Verdict    regress.Verdict  `json:"verdict"`
}

// Diff is the phase-by-phase comparison of two profiles.
type Diff struct {
	OldSource string `json:"old_source,omitempty"`
	NewSource string `json:"new_source,omitempty"`
	OldP      int    `json:"old_p"`
	NewP      int    `json:"new_p"`

	OldMakespan    float64 `json:"old_makespan_sec"`
	NewMakespan    float64 `json:"new_makespan_sec"`
	DMakespan      float64 `json:"d_makespan_sec"`
	DCriticalPath  float64 `json:"d_critical_path_sec"`
	DLoadImbalance float64 `json:"d_load_imbalance"`
	DIdle          float64 `json:"d_idle_sec"`

	Verdict regress.Verdict `json:"verdict"`
	Phases  []PhaseDelta    `json:"phases"`
}

// Compare diffs two profiles under the given makespan tolerance (zero for
// virtual-time runs: the machine is bit-reproducible).
func Compare(old, new *obs.Profile, tol regress.Tolerance) *Diff {
	d := &Diff{
		OldP: old.P, NewP: new.P,
		OldMakespan:    old.Makespan,
		NewMakespan:    new.Makespan,
		DMakespan:      new.Makespan - old.Makespan,
		DCriticalPath:  new.CriticalPath - old.CriticalPath,
		DLoadImbalance: new.LoadImbalance - old.LoadImbalance,
		DIdle:          new.Idle - old.Idle,
	}
	switch {
	case withinTol(tol, old.Makespan, new.Makespan):
		d.Verdict = regress.Unchanged
	case new.Makespan < old.Makespan:
		d.Verdict = regress.Improved
	default:
		d.Verdict = regress.Regressed
	}

	labels := map[string]bool{}
	oldPh := map[string]obs.PhaseProfile{}
	for _, pp := range old.Phases {
		oldPh[pp.Label] = pp
		labels[pp.Label] = true
	}
	newPh := map[string]obs.PhaseProfile{}
	for _, pp := range new.Phases {
		newPh[pp.Label] = pp
		labels[pp.Label] = true
	}
	sorted := make([]string, 0, len(labels))
	for l := range labels {
		sorted = append(sorted, l)
	}
	sort.Strings(sorted)

	for _, l := range sorted {
		op, haveOld := oldPh[l]
		np, haveNew := newPh[l]
		pd := PhaseDelta{
			Label:      l,
			Old:        op,
			New:        np,
			DCompute:   np.Compute - op.Compute,
			DComm:      np.Comm - op.Comm,
			DWait:      np.Wait - op.Wait,
			DMaxTotal:  np.MaxTotal - op.MaxTotal,
			DImbalance: np.Imbalance - op.Imbalance,
			DMsgs:      np.Msgs - op.Msgs,
			DBytes:     np.Bytes - op.Bytes,
		}
		switch {
		case haveOld && haveNew:
			switch {
			case withinTol(tol, op.MaxTotal, np.MaxTotal):
				pd.Verdict = regress.Unchanged
			case np.MaxTotal < op.MaxTotal:
				pd.Verdict = regress.Improved
			default:
				pd.Verdict = regress.Regressed
			}
		case haveOld:
			pd.Verdict = regress.Removed
		default:
			pd.Verdict = regress.Added
		}
		d.Phases = append(d.Phases, pd)
	}
	return d
}

func withinTol(t regress.Tolerance, old, new float64) bool {
	diff := math.Abs(new - old)
	return diff <= t.Rel*math.Abs(old) || diff <= t.Abs
}

// HasRegression reports whether the run's makespan regressed beyond
// tolerance.
func (d *Diff) HasRegression() bool { return d.Verdict == regress.Regressed }

// Culprit returns the phase with the largest absolute max-total delta —
// the slowest rank's per-phase time is what moves the makespan, so this is
// the first place to look — or "" if no phase moved.
func (d *Diff) Culprit() string {
	best, bestAbs := "", 0.0
	for _, pd := range d.Phases {
		if a := math.Abs(pd.DMaxTotal); a > bestAbs {
			best, bestAbs = pd.Label, a
		}
	}
	return best
}

// label renders a phase label for reports.
func label(l string) string {
	if l == "" {
		return "(unlabeled)"
	}
	return l
}

// fmtD renders a signed seconds delta in engineering units.
func fmtD(s float64) string {
	sign := "+"
	if s < 0 {
		sign = "-"
		s = -s
	}
	switch {
	case s == 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%s%.2fµs", sign, s*1e6)
	case s < 1:
		return fmt.Sprintf("%s%.3fms", sign, s*1e3)
	default:
		return fmt.Sprintf("%s%.3fs", sign, s)
	}
}

// Text renders the phase-by-phase comparison as an aligned table.
func (d *Diff) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profdiff: %s — makespan %.6gs -> %.6gs (%s)\n",
		d.Verdict, d.OldMakespan, d.NewMakespan, fmtD(d.DMakespan))
	if d.OldSource != "" || d.NewSource != "" {
		fmt.Fprintf(&sb, "old: %s\nnew: %s\n", d.OldSource, d.NewSource)
	}
	if d.OldP != d.NewP {
		fmt.Fprintf(&sb, "rank counts differ: %d -> %d (phase deltas compare different machines)\n", d.OldP, d.NewP)
	}
	fmt.Fprintf(&sb, "critical path %s, load imbalance %+.4f, trailing idle %s\n",
		fmtD(d.DCriticalPath), d.DLoadImbalance, fmtD(d.DIdle))
	fmt.Fprintf(&sb, "%-14s  %9s  %10s  %10s  %10s  %10s  %8s  %9s\n",
		"phase", "verdict", "Δcompute", "Δcomm", "Δwait", "Δmax", "Δimbal", "Δmsgs")
	for _, pd := range d.Phases {
		fmt.Fprintf(&sb, "%-14s  %9s  %10s  %10s  %10s  %10s  %+8.4f  %+9d\n",
			label(pd.Label), pd.Verdict, fmtD(pd.DCompute), fmtD(pd.DComm), fmtD(pd.DWait),
			fmtD(pd.DMaxTotal), pd.DImbalance, pd.DMsgs)
	}
	if c := d.Culprit(); c != "" {
		fmt.Fprintf(&sb, "largest phase delta: %s\n", label(c))
	}
	return sb.String()
}

// Markdown renders the comparison for the CI artifact report.
func (d *Diff) Markdown() string {
	var sb strings.Builder
	sb.WriteString("## profdiff report\n\n")
	if d.OldSource != "" || d.NewSource != "" {
		fmt.Fprintf(&sb, "- old: `%s`\n- new: `%s`\n\n", d.OldSource, d.NewSource)
	}
	fmt.Fprintf(&sb, "**%s** — makespan %.6gs → %.6gs (%s); critical path %s; load imbalance %+.4f\n\n",
		d.Verdict, d.OldMakespan, d.NewMakespan, fmtD(d.DMakespan), fmtD(d.DCriticalPath), d.DLoadImbalance)
	sb.WriteString("| phase | verdict | Δcompute | Δcomm | Δwait | Δmax total | Δimbalance | Δmsgs | Δbytes |\n")
	sb.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, pd := range d.Phases {
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s | %+.4f | %+d | %+d |\n",
			label(pd.Label), pd.Verdict, fmtD(pd.DCompute), fmtD(pd.DComm), fmtD(pd.DWait),
			fmtD(pd.DMaxTotal), pd.DImbalance, pd.DMsgs, pd.DBytes)
	}
	if c := d.Culprit(); c != "" {
		fmt.Fprintf(&sb, "\nLargest phase delta: **%s**\n", label(c))
	}
	return sb.String()
}

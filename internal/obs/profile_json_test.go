package obs

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// The profile of a traced sim run must survive the disk round trip exactly:
// profdiff and the CI perf gate compare regenerated profiles against
// committed ones byte-for-byte.
func TestProfileJSONRoundTrip(t *testing.T) {
	res, tr := runPingPong(t)
	want := NewProfile(res, tr)
	path := t.TempDir() + "/profile.json"
	if err := WriteProfileJSON(path, "obs test pingPong p=2", want); err != nil {
		t.Fatal(err)
	}
	pf, err := ReadProfileJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Source != "obs test pingPong p=2" {
		t.Errorf("source %q", pf.Source)
	}
	if !reflect.DeepEqual(pf.Profile, want) {
		t.Fatalf("round trip changed the profile:\n got %+v\nwant %+v", pf.Profile, want)
	}
}

func TestReadProfileJSONValidation(t *testing.T) {
	dir := t.TempDir()
	// A bench file is not a profile file.
	bench := dir + "/BENCH_x.json"
	if err := WriteBenchJSON(bench, BenchFile{Source: "t"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfileJSON(bench); err == nil || !strings.Contains(err.Error(), "not a profile file") {
		t.Fatalf("want kind error, got %v", err)
	}
	if err := WriteProfileJSON(dir+"/nil.json", "t", nil); err == nil {
		t.Fatal("nil profile accepted")
	}
}

// Every failure mode of the strict reader must surface as an error, never a
// zero-valued ProfileFile: a missing file, a file cut off mid-write, a
// future schema version, and an envelope with no body.
func TestReadProfileJSONErrorPaths(t *testing.T) {
	dir := t.TempDir()

	if _, err := ReadProfileJSON(dir + "/absent.json"); err == nil || !strings.Contains(err.Error(), "read profile file") {
		t.Errorf("missing file: want read error, got %v", err)
	}

	// Truncate a valid file mid-body, as a crashed writer would leave it.
	res, tr := runPingPong(t)
	valid := dir + "/profile.json"
	if err := WriteProfileJSON(valid, "t", NewProfile(res, tr)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	trunc := dir + "/truncated.json"
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfileJSON(trunc); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Errorf("truncated file: want parse error, got %v", err)
	}

	future := dir + "/future.json"
	if err := os.WriteFile(future, []byte(`{"schema": 99, "kind": "profile", "profile": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfileJSON(future); err == nil || !strings.Contains(err.Error(), "schema 99") {
		t.Errorf("future schema: want unsupported-schema error, got %v", err)
	}

	headless := dir + "/headless.json"
	if err := os.WriteFile(headless, []byte(`{"schema": 1, "kind": "profile"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfileJSON(headless); err == nil || !strings.Contains(err.Error(), "missing profile body") {
		t.Errorf("nil body: want missing-body error, got %v", err)
	}
}

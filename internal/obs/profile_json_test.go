package obs

import (
	"reflect"
	"strings"
	"testing"
)

// The profile of a traced sim run must survive the disk round trip exactly:
// profdiff and the CI perf gate compare regenerated profiles against
// committed ones byte-for-byte.
func TestProfileJSONRoundTrip(t *testing.T) {
	res, tr := runPingPong(t)
	want := NewProfile(res, tr)
	path := t.TempDir() + "/profile.json"
	if err := WriteProfileJSON(path, "obs test pingPong p=2", want); err != nil {
		t.Fatal(err)
	}
	pf, err := ReadProfileJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Source != "obs test pingPong p=2" {
		t.Errorf("source %q", pf.Source)
	}
	if !reflect.DeepEqual(pf.Profile, want) {
		t.Fatalf("round trip changed the profile:\n got %+v\nwant %+v", pf.Profile, want)
	}
}

func TestReadProfileJSONValidation(t *testing.T) {
	dir := t.TempDir()
	// A bench file is not a profile file.
	bench := dir + "/BENCH_x.json"
	if err := WriteBenchJSON(bench, BenchFile{Source: "t"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfileJSON(bench); err == nil || !strings.Contains(err.Error(), "not a profile file") {
		t.Fatalf("want kind error, got %v", err)
	}
	if err := WriteProfileJSON(dir+"/nil.json", "t", nil); err == nil {
		t.Fatal("nil profile accepted")
	}
}

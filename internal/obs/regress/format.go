package regress

import (
	"fmt"
	"strings"
)

// fmtVal renders a metric value compactly: counts as integers, times and
// ratios with enough digits to see the drift.
func fmtVal(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

// fmtRel renders the relative delta of a metric row ("n/a" when the old
// side was zero, so no division hides an appearing value).
func fmtRel(md MetricDelta) string {
	if md.Old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.3f%%", md.Rel*100)
}

// changedMetrics filters a record's metric rows to the ones worth
// printing: everything that is not verdict-unchanged.
func changedMetrics(rd RecordDiff) []MetricDelta {
	var out []MetricDelta
	for _, md := range rd.Metrics {
		if md.Verdict != Unchanged {
			out = append(out, md)
		}
	}
	return out
}

// Text renders the diff as an aligned plain-text report: the summary line,
// then one line per changed metric, grouped by record.
func (d *Diff) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "benchdiff: %s\n", d.Summary())
	if d.OldSource != "" || d.NewSource != "" {
		fmt.Fprintf(&sb, "old: %s\nnew: %s\n", d.OldSource, d.NewSource)
	}
	printed := false
	for _, rd := range d.Records {
		// A verdict-unchanged record can still carry metric-level
		// added/removed rows worth surfacing.
		changed := changedMetrics(rd)
		if len(changed) == 0 {
			continue
		}
		printed = true
		fmt.Fprintf(&sb, "\n%s: %s\n", rd.Verdict, rd.Key())
		for _, md := range changed {
			switch md.Verdict {
			case Added:
				fmt.Fprintf(&sb, "  %-22s (new metric) = %s\n", md.Metric, fmtVal(md.New))
			case Removed:
				fmt.Fprintf(&sb, "  %-22s (metric gone) was %s\n", md.Metric, fmtVal(md.Old))
			default:
				fmt.Fprintf(&sb, "  %-22s %s -> %s  (%+.6g, %s) %s\n",
					md.Metric, fmtVal(md.Old), fmtVal(md.New), md.Delta, fmtRel(md), md.Verdict)
			}
		}
	}
	if !printed {
		sb.WriteString("\nno drift: every aligned record is within tolerance.\n")
	}
	return sb.String()
}

// Markdown renders the diff as the CI artifact report: a summary, then a
// table of every changed metric with absolute and relative deltas.
func (d *Diff) Markdown() string {
	var sb strings.Builder
	sb.WriteString("## benchdiff report\n\n")
	if d.OldSource != "" || d.NewSource != "" {
		fmt.Fprintf(&sb, "- old: `%s`\n- new: `%s`\n\n", d.OldSource, d.NewSource)
	}
	fmt.Fprintf(&sb, "**%s**\n\n", d.Summary())
	var rows []string
	for _, rd := range d.Records {
		for _, md := range changedMetrics(rd) {
			var oldS, newS, deltaS, relS string
			switch md.Verdict {
			case Added:
				oldS, newS, deltaS, relS = "—", fmtVal(md.New), "—", "—"
			case Removed:
				oldS, newS, deltaS, relS = fmtVal(md.Old), "—", "—", "—"
			default:
				oldS, newS = fmtVal(md.Old), fmtVal(md.New)
				deltaS = fmt.Sprintf("%+.6g", md.Delta)
				relS = fmtRel(md)
			}
			rows = append(rows, fmt.Sprintf("| %s | %s | %s | %s | %s | %s | %s |",
				rd.Key(), md.Verdict, md.Metric, oldS, newS, deltaS, relS))
		}
	}
	if len(rows) == 0 {
		sb.WriteString("No drift: every aligned record is within tolerance.\n")
		return sb.String()
	}
	sb.WriteString("| record | verdict | metric | old | new | Δ | Δ% |\n")
	sb.WriteString("|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		sb.WriteString(r + "\n")
	}
	return sb.String()
}

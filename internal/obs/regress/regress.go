// Package regress is the consumer side of the BENCH_*.json contract: it
// aligns two bench files by (suite, name, p) and produces a typed Diff —
// absolute and relative deltas per metric, including suite-specific Extra
// keys, with per-suite tolerance rules and a verdict per metric and per
// record. Because every metric comes from the bit-reproducible virtual
// machine of internal/sim, the default tolerance is zero: any drift in
// makespan, message counts or search-node counts is a real behavior
// change, not measurement noise, so the diff can gate CI with no flake
// budget. Wall-clock suites (if any are ever added) get their slack
// through Rules.Suite overrides.
package regress

import (
	"fmt"
	"math"
	"sort"

	"genmp/internal/obs"
)

// Verdict classifies one metric or one record after comparison.
type Verdict int

const (
	// Unchanged: every compared metric is within tolerance.
	Unchanged Verdict = iota
	// Improved: at least one metric moved in the better direction and none
	// regressed.
	Improved
	// Regressed: at least one metric moved in the worse direction beyond
	// tolerance.
	Regressed
	// Added: the record (or metric) exists only on the new side.
	Added
	// Removed: the record (or metric) exists only on the old side.
	Removed
)

var verdictNames = map[Verdict]string{
	Unchanged: "unchanged",
	Improved:  "improved",
	Regressed: "regressed",
	Added:     "added",
	Removed:   "removed",
}

func (v Verdict) String() string {
	if s, ok := verdictNames[v]; ok {
		return s
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// MarshalJSON renders the verdict as its lowercase name.
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(`"` + v.String() + `"`), nil
}

// Tolerance is the allowed drift before a delta counts as a change. A
// delta passes if |new−old| ≤ Rel·|old| or |new−old| ≤ Abs.
type Tolerance struct {
	Rel float64 `json:"rel,omitempty"`
	Abs float64 `json:"abs,omitempty"`
}

// within reports whether the delta old→new is inside the tolerance.
func (t Tolerance) within(old, new float64) bool {
	d := math.Abs(new - old)
	return d <= t.Rel*math.Abs(old) || d <= t.Abs
}

// Rules configures a comparison: the default tolerance (zero for the
// virtual-time metrics) and per-suite overrides for suites whose metrics
// are legitimately noisy.
type Rules struct {
	Default Tolerance
	Suite   map[string]Tolerance
}

// tol resolves the tolerance for a suite.
func (r Rules) tol(suite string) Tolerance {
	if t, ok := r.Suite[suite]; ok {
		return t
	}
	return r.Default
}

// MetricDelta is the comparison of one named scalar of one record. Rel is
// Delta/|Old| and is left 0 when Old is 0 (renderers show it as n/a).
type MetricDelta struct {
	Metric  string  `json:"metric"`
	Old     float64 `json:"old"`
	New     float64 `json:"new"`
	Delta   float64 `json:"delta"`
	Rel     float64 `json:"rel,omitempty"`
	Verdict Verdict `json:"verdict"`
}

// RecordDiff is the comparison of one (suite, name, p) record. For Added
// and Removed records Metrics holds the one present side's values (Old or
// New respectively) so the report shows what appeared or vanished.
type RecordDiff struct {
	Suite   string        `json:"suite"`
	Name    string        `json:"name"`
	P       int           `json:"p,omitempty"`
	Verdict Verdict       `json:"verdict"`
	Metrics []MetricDelta `json:"metrics,omitempty"`
}

// Key returns the record's identity.
func (rd RecordDiff) Key() obs.BenchKey {
	return obs.BenchKey{Suite: rd.Suite, Name: rd.Name, P: rd.P}
}

// Diff is the full comparison of two bench files.
type Diff struct {
	OldSource string       `json:"old_source,omitempty"`
	NewSource string       `json:"new_source,omitempty"`
	Records   []RecordDiff `json:"records"`
	// Summary counts by record verdict.
	NImproved  int `json:"improved"`
	NRegressed int `json:"regressed"`
	NUnchanged int `json:"unchanged"`
	NAdded     int `json:"added"`
	NRemoved   int `json:"removed"`
}

// HasRegression reports whether any record regressed — the CI gate's exit
// condition. Added and removed records are surfaced in the report but do
// not fail the gate on their own: growing or pruning the committed suite
// is an explicit, reviewable edit of BENCH_results.json.
func (d *Diff) HasRegression() bool { return d.NRegressed > 0 }

// Summary is the one-line triage count.
func (d *Diff) Summary() string {
	return fmt.Sprintf("%d regressed, %d improved, %d unchanged, %d added, %d removed",
		d.NRegressed, d.NImproved, d.NUnchanged, d.NAdded, d.NRemoved)
}

// higherIsBetter reports the direction of a metric: speedup grows when
// things get better; everything else (makespan, traffic, search work,
// calibration error) regresses when it grows.
func higherIsBetter(metric string) bool { return metric == "speedup" }

// metricsOf flattens a record into named scalars, following the omitempty
// presence contract of obs.BenchRecord: a zero builtin field means "not
// measured", while Extra keys are present whenever set.
func metricsOf(r obs.BenchRecord) map[string]float64 {
	m := map[string]float64{}
	if r.Makespan != 0 {
		m["makespan_sec"] = r.Makespan
	}
	if r.Speedup != 0 {
		m["speedup"] = r.Speedup
	}
	if r.Messages != 0 {
		m["messages"] = float64(r.Messages)
	}
	if r.Bytes != 0 {
		m["bytes"] = float64(r.Bytes)
	}
	for k, v := range r.Extra {
		m[k] = v
	}
	return m
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Compare aligns the records of two bench files by (suite, name, p) and
// diffs every metric under the given rules. The result lists records in
// key order; unchanged records carry their metric deltas too, so a -json
// consumer sees the full comparison, while the renderers only print what
// changed.
func Compare(old, new obs.BenchFile, rules Rules) *Diff {
	d := &Diff{OldSource: old.Source, NewSource: new.Source}
	oldIdx := map[obs.BenchKey]obs.BenchRecord{}
	for _, r := range old.Records {
		oldIdx[r.Key()] = r
	}
	newIdx := map[obs.BenchKey]obs.BenchRecord{}
	for _, r := range new.Records {
		newIdx[r.Key()] = r
	}
	keys := make([]obs.BenchKey, 0, len(oldIdx)+len(newIdx))
	for k := range oldIdx {
		keys = append(keys, k)
	}
	for k := range newIdx {
		if _, ok := oldIdx[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Suite != keys[b].Suite {
			return keys[a].Suite < keys[b].Suite
		}
		if keys[a].Name != keys[b].Name {
			return keys[a].Name < keys[b].Name
		}
		return keys[a].P < keys[b].P
	})

	for _, k := range keys {
		or, haveOld := oldIdx[k]
		nr, haveNew := newIdx[k]
		rd := RecordDiff{Suite: k.Suite, Name: k.Name, P: k.P}
		switch {
		case haveOld && haveNew:
			rd.Verdict, rd.Metrics = compareRecord(or, nr, rules.tol(k.Suite))
		case haveOld:
			rd.Verdict = Removed
			rd.Metrics = presentMetrics(or, Removed)
		default:
			rd.Verdict = Added
			rd.Metrics = presentMetrics(nr, Added)
		}
		d.Records = append(d.Records, rd)
		switch rd.Verdict {
		case Improved:
			d.NImproved++
		case Regressed:
			d.NRegressed++
		case Added:
			d.NAdded++
		case Removed:
			d.NRemoved++
		default:
			d.NUnchanged++
		}
	}
	return d
}

// compareRecord diffs the union of both sides' metrics. A metric present
// on only one side is marked Added/Removed; it flags the record as changed
// but is not a regression by itself.
func compareRecord(or, nr obs.BenchRecord, tol Tolerance) (Verdict, []MetricDelta) {
	om, nm := metricsOf(or), metricsOf(nr)
	union := map[string]float64{}
	for k, v := range om {
		union[k] = v
	}
	for k, v := range nm {
		union[k] = v
	}
	var out []MetricDelta
	anyImproved, anyRegressed := false, false
	for _, name := range sortedKeys(union) {
		ov, haveOld := om[name]
		nv, haveNew := nm[name]
		md := MetricDelta{Metric: name, Old: ov, New: nv}
		switch {
		case haveOld && haveNew:
			md.Delta = nv - ov
			if ov != 0 {
				md.Rel = md.Delta / math.Abs(ov)
			}
			switch {
			case tol.within(ov, nv):
				md.Verdict = Unchanged
			case (nv > ov) == higherIsBetter(name):
				md.Verdict = Improved
				anyImproved = true
			default:
				md.Verdict = Regressed
				anyRegressed = true
			}
		case haveOld:
			md.Verdict = Removed
		default:
			md.Verdict = Added
		}
		out = append(out, md)
	}
	switch {
	case anyRegressed:
		return Regressed, out
	case anyImproved:
		return Improved, out
	default:
		return Unchanged, out
	}
}

// presentMetrics renders the metrics of a one-sided (added or removed)
// record, filling only the side that exists.
func presentMetrics(r obs.BenchRecord, v Verdict) []MetricDelta {
	m := metricsOf(r)
	var out []MetricDelta
	for _, name := range sortedKeys(m) {
		md := MetricDelta{Metric: name, Verdict: v}
		if v == Removed {
			md.Old = m[name]
		} else {
			md.New = m[name]
		}
		out = append(out, md)
	}
	return out
}

package regress

import (
	"encoding/json"
	"strings"
	"testing"

	"genmp/internal/obs"
)

func baseFile() obs.BenchFile {
	return obs.BenchFile{
		Source: "spbench -json (old)",
		Records: []obs.BenchRecord{
			{Suite: "sp-table1-dhpf", Name: "p04", P: 4, Speedup: 2.9,
				Extra: map[string]float64{"search_nodes": 10}},
			{Suite: "sp-run", Name: "classB-p16", P: 16, Makespan: 0.100, Messages: 960, Bytes: 1 << 20},
			{Suite: "adi-strategy", Name: "multipartition", P: 16, Makespan: 0.050},
			{Suite: "gone", Name: "old-only", P: 2, Makespan: 1},
		},
	}
}

func newFile() obs.BenchFile {
	return obs.BenchFile{
		Source: "spbench -json (new)",
		Records: []obs.BenchRecord{
			// speedup up (improved), search_nodes up (regressed) → record regresses.
			{Suite: "sp-table1-dhpf", Name: "p04", P: 4, Speedup: 3.1,
				Extra: map[string]float64{"search_nodes": 12}},
			// makespan regressed, traffic unchanged.
			{Suite: "sp-run", Name: "classB-p16", P: 16, Makespan: 0.105, Messages: 960, Bytes: 1 << 20},
			// small drift, covered by the suite tolerance below.
			{Suite: "adi-strategy", Name: "multipartition", P: 16, Makespan: 0.0502},
			{Suite: "fresh", Name: "new-only", P: 8, Makespan: 2},
		},
	}
}

func TestCompareVerdicts(t *testing.T) {
	rules := Rules{Suite: map[string]Tolerance{"adi-strategy": {Rel: 0.01}}}
	d := Compare(baseFile(), newFile(), rules)

	if !d.HasRegression() {
		t.Fatal("regression not detected")
	}
	if d.NRegressed != 2 || d.NImproved != 0 || d.NUnchanged != 1 || d.NAdded != 1 || d.NRemoved != 1 {
		t.Fatalf("summary counts wrong: %s", d.Summary())
	}

	byKey := map[string]RecordDiff{}
	for _, rd := range d.Records {
		byKey[rd.Suite+"/"+rd.Name] = rd
	}
	if v := byKey["sp-run/classB-p16"].Verdict; v != Regressed {
		t.Errorf("makespan drift verdict %v", v)
	}
	if v := byKey["adi-strategy/multipartition"].Verdict; v != Unchanged {
		t.Errorf("tolerated drift verdict %v (suite tolerance ignored)", v)
	}
	if v := byKey["fresh/new-only"].Verdict; v != Added {
		t.Errorf("added record verdict %v", v)
	}
	if v := byKey["gone/old-only"].Verdict; v != Removed {
		t.Errorf("removed record verdict %v", v)
	}

	// Mixed record: one improved metric does not mask a regressed one.
	mixed := byKey["sp-table1-dhpf/p04"]
	if mixed.Verdict != Regressed {
		t.Errorf("mixed record verdict %v, want regressed", mixed.Verdict)
	}
	metricVerdicts := map[string]Verdict{}
	for _, md := range mixed.Metrics {
		metricVerdicts[md.Metric] = md.Verdict
	}
	if metricVerdicts["speedup"] != Improved {
		t.Errorf("speedup verdict %v (direction: higher is better)", metricVerdicts["speedup"])
	}
	if metricVerdicts["search_nodes"] != Regressed {
		t.Errorf("search_nodes verdict %v (direction: lower is better)", metricVerdicts["search_nodes"])
	}
}

func TestCompareIdenticalIsClean(t *testing.T) {
	d := Compare(baseFile(), baseFile(), Rules{})
	if d.HasRegression() || d.NUnchanged != 4 || d.NAdded != 0 || d.NRemoved != 0 {
		t.Fatalf("identical files not clean: %s", d.Summary())
	}
	if !strings.Contains(d.Text(), "no drift") {
		t.Errorf("clean text report:\n%s", d.Text())
	}
}

func TestAbsToleranceAndZeroOld(t *testing.T) {
	old := obs.BenchFile{Records: []obs.BenchRecord{
		{Suite: "s", Name: "n", Extra: map[string]float64{"err": 0}},
	}}
	new := obs.BenchFile{Records: []obs.BenchRecord{
		{Suite: "s", Name: "n", Extra: map[string]float64{"err": 0.004}},
	}}
	// Rel tolerance alone cannot absorb a move off zero; Abs can.
	if d := Compare(old, new, Rules{Default: Tolerance{Rel: 0.5}}); !d.HasRegression() {
		t.Error("0 -> 0.004 passed a purely relative tolerance")
	}
	if d := Compare(old, new, Rules{Default: Tolerance{Abs: 0.01}}); d.HasRegression() {
		t.Error("0 -> 0.004 failed an absolute tolerance of 0.01")
	}
	// Rel on a zero old side must render as n/a and still marshal (no Inf).
	d := Compare(old, new, Rules{})
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("diff not marshalable: %v", err)
	}
	if !strings.Contains(d.Text(), "n/a") {
		t.Errorf("zero-old relative delta not rendered n/a:\n%s", d.Text())
	}
}

func TestMarkdownReport(t *testing.T) {
	d := Compare(baseFile(), newFile(), Rules{Suite: map[string]Tolerance{"adi-strategy": {Rel: 0.01}}})
	md := d.Markdown()
	for _, want := range []string{
		"benchdiff report",
		"| record | verdict | metric | old | new |",
		"sp-run/classB-p16 (p=16)",
		"regressed",
		"makespan_sec",
		"fresh/new-only (p=8)",
		"added",
		"gone/old-only (p=2)",
		"removed",
		"`spbench -json (old)`",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	// The tolerated suite must not appear as a changed row.
	if strings.Contains(md, "adi-strategy/multipartition") {
		t.Errorf("tolerated record leaked into the changed-rows table:\n%s", md)
	}
	// Verdicts serialize as names.
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"verdict":"regressed"`) {
		t.Errorf("verdict not serialized by name: %s", data)
	}
}

func TestMetricAddedRemovedWithinRecord(t *testing.T) {
	old := obs.BenchFile{Records: []obs.BenchRecord{
		{Suite: "s", Name: "n", Makespan: 1, Extra: map[string]float64{"legacy": 5}},
	}}
	new := obs.BenchFile{Records: []obs.BenchRecord{
		{Suite: "s", Name: "n", Makespan: 1, Extra: map[string]float64{"shiny": 7}},
	}}
	d := Compare(old, new, Rules{})
	if d.HasRegression() {
		t.Fatal("metric appearance/disappearance must not regress on its own")
	}
	rd := d.Records[0]
	verdicts := map[string]Verdict{}
	for _, md := range rd.Metrics {
		verdicts[md.Metric] = md.Verdict
	}
	if verdicts["legacy"] != Removed || verdicts["shiny"] != Added || verdicts["makespan_sec"] != Unchanged {
		t.Errorf("metric verdicts: %v", verdicts)
	}
	txt := d.Text()
	if !strings.Contains(txt, "new metric") || !strings.Contains(txt, "metric gone") {
		t.Errorf("metric add/remove not rendered:\n%s", txt)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"genmp/internal/obs/causal"
	"genmp/internal/sim"
)

// traceEvent is one entry of the Chrome trace-event JSON format (the legacy
// format Perfetto's ui.perfetto.dev imports directly). Field order is fixed
// by the struct, so the output is byte-stable for a given event stream.
type traceEvent struct {
	Name string     `json:"name,omitempty"`
	Cat  string     `json:"cat,omitempty"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"` // microseconds
	Dur  *float64   `json:"dur,omitempty"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	ID   *int       `json:"id,omitempty"`
	BP   string     `json:"bp,omitempty"`
	S    string     `json:"s,omitempty"`
	Args *traceArgs `json:"args,omitempty"`
}

type traceArgs struct {
	Name   string  `json:"name,omitempty"`
	Peer   *int    `json:"peer,omitempty"`
	Bytes  int     `json:"bytes,omitempty"`
	Tag    int     `json:"tag,omitempty"`
	Phase  string  `json:"phase,omitempty"`
	WaitUs float64 `json:"wait_us,omitempty"`
	Index  int     `json:"sort_index,omitempty"`
}

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

const usec = 1e6

// WriteTrace writes a collected sim.Trace as Chrome trace-event JSON,
// loadable in ui.perfetto.dev or chrome://tracing. Each rank becomes one
// named track ("rank N"); compute/send/recv/collective intervals become
// complete ("X") slices named by their phase label (falling back to the
// event kind); marks become instant events; and every matched send/recv
// pair becomes a flow arrow (one "s"/"f" pair sharing an id), so message
// causality is visible across tracks. The output is deterministic: same
// run, same bytes.
func WriteTrace(w io.Writer, tr *sim.Trace, p int) error {
	if tr == nil {
		return fmt.Errorf("obs: WriteTrace: nil trace")
	}
	events := tr.Events()
	out := make([]traceEvent, 0, 2*len(events)+p)
	for rank := 0; rank < p; rank++ {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: rank,
			Args: &traceArgs{Name: fmt.Sprintf("rank %d", rank)},
		})
	}

	// Pair sends and recvs with the shared FIFO matcher (k-th send on a
	// (src,dst,tag) channel matches the k-th recv — the machine's delivery
	// order). A waiting recv can START before its send, so matching needs
	// the full per-channel lists, not a single time-ordered pass. Flow ids
	// are assigned in recv order — deterministic because Events() is sorted.
	matcher := causal.NewMatcher()
	for i, e := range events {
		switch e.Kind {
		case sim.EvSend:
			matcher.AddSend(causal.Channel{Src: e.Rank, Dst: e.Peer, Tag: e.Tag}, i)
		case sim.EvRecv:
			matcher.AddRecv(causal.Channel{Src: e.Peer, Dst: e.Rank, Tag: e.Tag}, i)
		}
	}
	type msgPair struct{ send, recv int }
	var pairs []msgPair
	matcher.Pairs(func(send, recv int) { pairs = append(pairs, msgPair{send, recv}) })
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].recv < pairs[b].recv })
	flowOf := make(map[int]int, 2*len(pairs)) // event index → ±flow id (send +, recv −)
	for k, pr := range pairs {
		flowOf[pr.send] = k + 1
		flowOf[pr.recv] = -(k + 1)
	}

	for i, e := range events {
		if e.Rank < 0 || e.Rank >= p {
			continue
		}
		name := e.Phase
		if name == "" {
			name = e.Kind.String()
		}
		if e.Label != "" {
			name = e.Label
		}
		args := &traceArgs{Phase: e.Phase}
		if e.Kind == sim.EvSend || e.Kind == sim.EvRecv {
			peer := e.Peer
			args.Peer = &peer
			args.Bytes = e.Bytes
			args.Tag = e.Tag
		}
		if e.Wait > 0 {
			args.WaitUs = e.Wait * usec
		}
		if e.Kind == sim.EvMark {
			out = append(out, traceEvent{
				Name: name, Cat: "mark", Ph: "i", Ts: e.Start * usec,
				Pid: 0, Tid: e.Rank, S: "t", Args: args,
			})
			continue
		}
		dur := (e.End - e.Start) * usec
		out = append(out, traceEvent{
			Name: name, Cat: e.Kind.String(), Ph: "X", Ts: e.Start * usec, Dur: &dur,
			Pid: 0, Tid: e.Rank, Args: args,
		})
		if id, ok := flowOf[i]; ok {
			// Flow binding is by timestamp: anchor inside the slice. The
			// finish anchors in the busy tail of the recv (after the
			// message arrived), which always follows the send's
			// completion, so arrows never point backward in time.
			fe := traceEvent{Name: "msg", Cat: "msg", Pid: 0, Tid: e.Rank}
			if id > 0 {
				fe.Ph = "s"
				fe.ID = &id
				fe.Ts = (e.Start + e.End) / 2 * usec
			} else {
				fe.Ph = "f"
				fe.BP = "e"
				pos := -id
				fe.ID = &pos
				fe.Ts = (e.End - e.Busy()/2) * usec
			}
			out = append(out, fe)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{DisplayTimeUnit: "ms", TraceEvents: out})
}

// WriteTraceFile writes the trace to path (see WriteTrace).
func WriteTraceFile(path string, tr *sim.Trace, p int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, tr, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package partition

import (
	"testing"

	"genmp/internal/numutil"
)

// forceParallel shrinks the fan-out floor and pins a worker count so the
// parallel path runs even on small spaces and single-CPU machines, restoring
// both on cleanup.
func forceParallel(t *testing.T, workers int) {
	t.Helper()
	oldFloor := parallelLeafFloor
	parallelLeafFloor = 1
	SetSearchParallelism(workers)
	t.Cleanup(func() {
		parallelLeafFloor = oldFloor
		SetSearchParallelism(0)
	})
}

func serialOptimal(t *testing.T, p, d int, obj Objective, stats *SearchStats) Result {
	t.Helper()
	SetSearchParallelism(1)
	res, err := OptimalStats(p, d, obj, stats)
	if err != nil {
		t.Fatalf("serial Optimal(p=%d,d=%d): %v", p, d, err)
	}
	return res
}

var parallelCases = []struct {
	p, d int
}{
	{4, 2}, {6, 3}, {8, 3}, {12, 3}, {16, 3}, {30, 3}, {36, 3},
	{60, 3}, {64, 3}, {120, 3}, {210, 3}, {360, 3}, {24, 4}, {96, 4},
	{720, 4}, {128, 5}, {2520, 3},
}

func objectivesFor(p, d int) []Objective {
	eta := make([]int, d)
	for i := range eta {
		eta[i] = 40 + 13*i // asymmetric extents: orientation matters
	}
	return []Objective{
		UniformObjective(d),
		VolumeObjective(eta),
		MachineObjective(eta, 100, 0.25),
	}
}

// TestParallelOptimalMatchesSerial: identical Result (gamma AND cost,
// exactly) from the fanned-out search for every case × objective, across
// several worker counts including more workers than chunks.
func TestParallelOptimalMatchesSerial(t *testing.T) {
	for _, tc := range parallelCases {
		for oi, obj := range objectivesFor(tc.p, tc.d) {
			want := serialOptimal(t, tc.p, tc.d, obj, nil)
			for _, workers := range []int{2, 3, 8} {
				forceParallel(t, workers)
				got, err := OptimalStats(tc.p, tc.d, obj, nil)
				if err != nil {
					t.Fatalf("parallel Optimal(p=%d,d=%d,obj=%d,w=%d): %v", tc.p, tc.d, oi, workers, err)
				}
				if got.Cost != want.Cost || !numutil.EqualInts(got.Gamma, want.Gamma) {
					t.Fatalf("p=%d d=%d obj=%d w=%d: parallel %v cost %v, serial %v cost %v",
						tc.p, tc.d, oi, workers, got.Gamma, got.Cost, want.Gamma, want.Cost)
				}
			}
		}
	}
}

// TestParallelOptimalCappedMatchesSerial: the capped scan has no bound
// pruning, so both the Result and every counter must match the serial walk
// exactly.
func TestParallelOptimalCappedMatchesSerial(t *testing.T) {
	for _, tc := range parallelCases {
		caps := make([]int, tc.d)
		for i := range caps {
			caps[i] = 2 + 3*i // tight asymmetric caps exercise PrunedCap
		}
		for oi, obj := range objectivesFor(tc.p, tc.d) {
			SetSearchParallelism(1)
			var wantStats SearchStats
			want, wantErr := OptimalCappedStats(tc.p, tc.d, obj, caps, &wantStats)

			forceParallel(t, 4)
			var gotStats SearchStats
			got, gotErr := OptimalCappedStats(tc.p, tc.d, obj, caps, &gotStats)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("p=%d d=%d obj=%d: error mismatch: serial %v, parallel %v", tc.p, tc.d, oi, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if got.Cost != want.Cost || !numutil.EqualInts(got.Gamma, want.Gamma) {
				t.Fatalf("p=%d d=%d obj=%d: parallel %v cost %v, serial %v cost %v",
					tc.p, tc.d, oi, got.Gamma, got.Cost, want.Gamma, want.Cost)
			}
			if gotStats != wantStats {
				t.Fatalf("p=%d d=%d obj=%d: counter mismatch:\nparallel %+v\nserial   %+v",
					tc.p, tc.d, oi, gotStats, wantStats)
			}
		}
	}
}

// TestParallelOptimalStatsConsistent: the as-executed parallel counters are
// self-consistent and bound the serial ones from above (chunk-local
// incumbents prune less than a global one).
func TestParallelOptimalStatsConsistent(t *testing.T) {
	var serialStats SearchStats
	serialOptimal(t, 360, 3, UniformObjective(3), &serialStats)

	forceParallel(t, 4)
	var stats SearchStats
	if _, err := OptimalStats(360, 3, UniformObjective(3), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.BruteForceLeaves != serialStats.BruteForceLeaves ||
		stats.Factors != serialStats.Factors ||
		stats.Distributions != serialStats.Distributions {
		t.Fatalf("static counters differ: parallel %+v, serial %+v", stats, serialStats)
	}
	if stats.LeavesEvaluated < serialStats.LeavesEvaluated ||
		stats.LeavesEvaluated > stats.BruteForceLeaves {
		t.Fatalf("parallel leaves %d out of range [serial %d, brute %d]",
			stats.LeavesEvaluated, serialStats.LeavesEvaluated, stats.BruteForceLeaves)
	}
	if stats.NodesVisited < serialStats.NodesVisited {
		t.Fatalf("parallel visited %d nodes < serial %d", stats.NodesVisited, serialStats.NodesVisited)
	}
}

// TestSearchParallelismControls: the knob clamps and restores as documented.
func TestSearchParallelismControls(t *testing.T) {
	SetSearchParallelism(3)
	if got := SearchParallelism(); got != 3 {
		t.Fatalf("SearchParallelism() = %d after Set(3)", got)
	}
	SetSearchParallelism(-5)
	if got := SearchParallelism(); got < 1 {
		t.Fatalf("SearchParallelism() = %d after Set(-5), want ≥ 1 (auto)", got)
	}
	SetSearchParallelism(0)
	if got := SearchParallelism(); got < 1 {
		t.Fatalf("SearchParallelism() = %d for auto, want ≥ 1", got)
	}
}

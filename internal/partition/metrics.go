// Live metrics bridge for the partitioning searches. SearchStats remains
// the per-call accounting callers consume programmatically; EnableMetrics
// additionally mirrors the counters into an obs/metrics.Registry as
// process-wide cumulative series. Parallel searches stream each chunk's
// counts as the chunk completes, so a long search shows progress on a
// scrape instead of one lump at the end.
package partition

import (
	"sync/atomic"

	"genmp/internal/obs/metrics"
)

// partMetrics holds the resolved instrument handles of the enabled
// registry.
type partMetrics struct {
	reg             *metrics.Registry
	searchesOptimal *metrics.Counter
	searchesCapped  *metrics.Counter
	inflight        *metrics.Gauge
	nodes           *metrics.Counter
	leaves          *metrics.Counter
	prunedBound     *metrics.Counter
	prunedCap       *metrics.Counter
	distributions   *metrics.Counter
}

var partMetricsPtr atomic.Pointer[partMetrics]

// EnableMetrics mirrors search accounting into reg (pass nil to disable).
// Counting is purely additive observability: search results, pruning and
// SearchStats are identical either way.
func EnableMetrics(reg *metrics.Registry) {
	if reg == nil {
		partMetricsPtr.Store(nil)
		return
	}
	pm := &partMetrics{
		reg:             reg,
		searchesOptimal: reg.Counter("partition_searches_total", "partitioning searches started, by entry point", metrics.L("kind", "optimal")),
		searchesCapped:  reg.Counter("partition_searches_total", "partitioning searches started, by entry point", metrics.L("kind", "capped")),
		inflight:        reg.Gauge("partition_searches_inflight", "partitioning searches currently running"),
		nodes:           reg.Counter("partition_search_nodes_total", "search-tree nodes expanded"),
		leaves:          reg.Counter("partition_search_leaves_total", "complete partitionings whose cost was evaluated"),
		prunedBound:     reg.Counter("partition_search_pruned_total", "candidates discarded before evaluation, by reason", metrics.L("reason", "bound")),
		prunedCap:       reg.Counter("partition_search_pruned_total", "candidates discarded before evaluation, by reason", metrics.L("reason", "cap")),
		distributions:   reg.Counter("partition_search_distributions_total", "per-factor exponent distributions generated (Figure 2)"),
	}
	partMetricsPtr.Store(pm)
}

// add publishes one SearchStats increment (a chunk's counts, or a serial
// walk's entry→exit delta).
func (pm *partMetrics) add(d SearchStats) {
	pm.nodes.Add(int64(d.NodesVisited))
	pm.leaves.Add(int64(d.LeavesEvaluated))
	pm.prunedBound.Add(int64(d.PrunedBound))
	pm.prunedCap.Add(int64(d.PrunedCap))
	pm.distributions.Add(int64(d.Distributions))
}

// minus returns the per-field difference s − pre; used to publish exactly
// the work one call performed even when the caller reuses a SearchStats
// across calls.
func (s SearchStats) minus(pre SearchStats) SearchStats {
	return SearchStats{
		Factors:         s.Factors - pre.Factors,
		Distributions:   s.Distributions - pre.Distributions,
		NodesVisited:    s.NodesVisited - pre.NodesVisited,
		LeavesEvaluated: s.LeavesEvaluated - pre.LeavesEvaluated,
		PrunedBound:     s.PrunedBound - pre.PrunedBound,
		PrunedCap:       s.PrunedCap - pre.PrunedCap,
	}
}

package partition

import (
	"testing"

	"genmp/internal/obs/metrics"
)

func value(t *testing.T, reg *metrics.Registry, name string, labels ...metrics.Label) float64 {
	t.Helper()
	v, _ := reg.Snapshot().Value(name, labels...)
	return v
}

func TestSearchMetricsSerial(t *testing.T) {
	reg := metrics.New()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	var stats SearchStats
	if _, err := OptimalStats(64, 3, UniformObjective(3), &stats); err != nil {
		t.Fatal(err)
	}
	if got := value(t, reg, "partition_searches_total", metrics.L("kind", "optimal")); got != 1 {
		t.Errorf("searches{optimal} = %g, want 1", got)
	}
	if got := value(t, reg, "partition_search_nodes_total"); got != float64(stats.NodesVisited) {
		t.Errorf("nodes = %g, want SearchStats' %d", got, stats.NodesVisited)
	}
	if got := value(t, reg, "partition_search_leaves_total"); got != float64(stats.LeavesEvaluated) {
		t.Errorf("leaves = %g, want %d", got, stats.LeavesEvaluated)
	}
	if got := value(t, reg, "partition_search_pruned_total", metrics.L("reason", "bound")); got != float64(stats.PrunedBound) {
		t.Errorf("pruned{bound} = %g, want %d", got, stats.PrunedBound)
	}
	if got := value(t, reg, "partition_searches_inflight"); got != 0 {
		t.Errorf("inflight after return = %g, want 0", got)
	}

	// Reusing the same SearchStats across calls must publish per-call
	// deltas: the registry total stays equal to the accumulated stats.
	if _, err := OptimalStats(64, 3, UniformObjective(3), &stats); err != nil {
		t.Fatal(err)
	}
	if got := value(t, reg, "partition_search_nodes_total"); got != float64(stats.NodesVisited) {
		t.Errorf("nodes after reuse = %g, want accumulated %d", got, stats.NodesVisited)
	}

	// A capped search counts under its own kind and records cap prunes.
	var capped SearchStats
	if _, err := OptimalCappedStats(16, 3, UniformObjective(3), []int{4, 4, 4}, &capped); err != nil {
		t.Fatal(err)
	}
	if got := value(t, reg, "partition_searches_total", metrics.L("kind", "capped")); got != 1 {
		t.Errorf("searches{capped} = %g, want 1", got)
	}
	if capped.PrunedCap > 0 {
		if got := value(t, reg, "partition_search_pruned_total", metrics.L("reason", "cap")); got != float64(capped.PrunedCap) {
			t.Errorf("pruned{cap} = %g, want %d", got, capped.PrunedCap)
		}
	}
}

// The parallel fan-out streams per-chunk counts; the registry totals must
// still agree with the aggregated SearchStats the caller receives.
func TestSearchMetricsParallel(t *testing.T) {
	oldFloor := parallelLeafFloor
	parallelLeafFloor = 1
	defer func() { parallelLeafFloor = oldFloor }()

	reg := metrics.New()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	var stats SearchStats
	if _, err := OptimalStats(24, 3, UniformObjective(3), &stats); err != nil {
		t.Fatal(err)
	}
	if got := value(t, reg, "partition_search_nodes_total"); got != float64(stats.NodesVisited) {
		t.Errorf("parallel nodes = %g, want %d", got, stats.NodesVisited)
	}
	if got := value(t, reg, "partition_search_leaves_total"); got != float64(stats.LeavesEvaluated) {
		t.Errorf("parallel leaves = %g, want %d", got, stats.LeavesEvaluated)
	}

	var capped SearchStats
	if _, err := OptimalCappedStats(24, 3, UniformObjective(3), []int{24, 24, 24}, &capped); err != nil {
		t.Fatal(err)
	}
	wantNodes := stats.NodesVisited + capped.NodesVisited
	if got := value(t, reg, "partition_search_nodes_total"); got != float64(wantNodes) {
		t.Errorf("nodes after capped parallel = %g, want %d", got, wantNodes)
	}
	if got := value(t, reg, "partition_search_distributions_total"); got != float64(stats.Distributions+capped.Distributions) {
		t.Errorf("distributions = %g, want %d", got, stats.Distributions+capped.Distributions)
	}
}

// Searches that do no work must report a 0 prune ratio, never NaN: the
// d = 1 error path and a fresh SearchStats both have BruteForceLeaves = 0.
func TestPruneRatioZeroWork(t *testing.T) {
	if got := (&SearchStats{}).PruneRatio(); got != 0 {
		t.Errorf("fresh stats PruneRatio = %g, want 0", got)
	}
	var nilStats *SearchStats
	if got := nilStats.PruneRatio(); got != 0 {
		t.Errorf("nil stats PruneRatio = %g, want 0", got)
	}
	var stats SearchStats
	if _, err := OptimalStats(6, 1, UniformObjective(1), &stats); err == nil {
		t.Fatal("1-D search on p > 1 should fail")
	}
	if got := stats.PruneRatio(); got != got || got != 0 { // got != got catches NaN
		t.Errorf("zero-work PruneRatio = %g, want 0", got)
	}
	// String() renders through PruneRatio and must not print NaN.
	if s := stats.String(); s == "" {
		t.Error("empty stats String()")
	}
}

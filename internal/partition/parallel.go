// Parallel partitioning search: the search tree of the optimized exhaustive
// algorithm is a cross product of per-factor distribution lists, so sharding
// the FIRST factor's distributions gives naturally independent subtrees that
// workers can walk without any shared state. Determinism is preserved by
// folding the per-chunk incumbents in ascending chunk order — exactly the
// order the serial depth-first walk visits them — so the parallel searches
// return the same Result as their serial counterparts.
//
// Small spaces stay serial (parallelLeafFloor): goroutine dispatch costs
// more than the walk itself there, and the committed benchmark baselines
// gate the serial search counters at zero tolerance.
package partition

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"genmp/internal/numutil"
)

var (
	searchParMu sync.Mutex
	searchParN  int // 0 = automatic (runtime.NumCPU)
)

// parallelLeafFloor is the minimum brute-force space size before the search
// fans out to worker goroutines; below it the serial walk is faster than the
// dispatch. Tests shrink it to force the parallel path on small inputs.
var parallelLeafFloor = 4096

// SetSearchParallelism sets the number of workers the partitioning searches
// may use: 1 forces the serial walk, 0 restores the automatic default
// (runtime.NumCPU()).
func SetSearchParallelism(n int) {
	searchParMu.Lock()
	defer searchParMu.Unlock()
	if n < 0 {
		n = 0
	}
	searchParN = n
}

// SearchParallelism returns the worker count the searches will use.
func SearchParallelism() int {
	searchParMu.Lock()
	defer searchParMu.Unlock()
	if searchParN > 0 {
		return searchParN
	}
	return runtime.NumCPU()
}

// useParallelSearch decides whether a search over a space of the given
// brute-force size, whose first factor has nChunks distributions, should fan
// out.
func useParallelSearch(bruteLeaves, nChunks int) bool {
	return nChunks > 1 && bruteLeaves >= parallelLeafFloor && SearchParallelism() > 1
}

// chunkOut is one top-level subtree's outcome: its incumbent and its
// as-executed accounting.
type chunkOut struct {
	best  Result
	stats SearchStats
}

// runChunks walks every top-level subtree (one per distribution of the first
// factor) on up to SearchParallelism() workers, dispatching chunk indices
// dynamically over an atomic counter. walk receives the chunk's distribution
// index and its private output slot; it must touch nothing shared.
func runChunks(nChunks int, walk func(i0 int, out *chunkOut)) []chunkOut {
	outs := make([]chunkOut, nChunks)
	workers := min(SearchParallelism(), nChunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i0 := int(next.Add(1)) - 1
				if i0 >= nChunks {
					return
				}
				walk(i0, &outs[i0])
				// Stream this chunk's counts immediately so a live scrape
				// sees search progress instead of one lump at the end; the
				// serial aggregation into the caller's SearchStats happens
				// later and is not re-published.
				if pm := partMetricsPtr.Load(); pm != nil {
					pm.add(outs[i0].stats)
				}
			}
		}()
	}
	wg.Wait()
	return outs
}

// parallelOptimal is the fan-out of OptimalStats' branch-and-bound walk.
// Every chunk runs the identical optimalRec with a chunk-local incumbent, so
// each leaf's partial cost is computed by exactly the serial arithmetic; the
// ascending fold with a strict < then selects the same leaf the serial
// depth-first walk would have kept (its equal-cost leaves are cut by the
// entry bound before evaluation, so "first minimal leaf in visit order"
// fully characterizes the serial answer). The aggregated NodesVisited /
// PrunedBound / LeavesEvaluated are as-executed counts: chunk-local
// incumbents prune less than the serial global incumbent, so they upper-bound
// the serial counters.
func parallelOptimal(factors []numutil.Factor, dists [][][]int, d int, obj Objective, stats *SearchStats) Result {
	alpha := factors[0].Prime
	outs := runChunks(len(dists[0]), func(i0 int, out *chunkOut) {
		gamma := make([]int, d)
		for i := range gamma {
			gamma[i] = 1
		}
		partial := obj.Cost(gamma)
		delta := 0.0
		for i, e := range dists[0][i0] {
			if e > 0 {
				grown := gamma[i] * numutil.Pow(alpha, e)
				delta += float64(grown-gamma[i]) * obj.Lambda[i]
				gamma[i] = grown
			}
		}
		out.best = Result{Cost: math.Inf(1)}
		optimalRec(factors, dists, obj, 1, partial+delta, gamma, &out.best, &out.stats)
	})
	stats.NodesVisited++ // the shared root the chunks fan out of
	best := Result{Cost: math.Inf(1)}
	for i := range outs {
		stats.NodesVisited += outs[i].stats.NodesVisited
		stats.LeavesEvaluated += outs[i].stats.LeavesEvaluated
		stats.PrunedBound += outs[i].stats.PrunedBound
		if outs[i].best.Gamma != nil && outs[i].best.Cost < best.Cost {
			best = outs[i].best
		}
	}
	return best
}

// parallelOptimalCapped is the fan-out of OptimalCappedStats' streaming
// scan. It reports ok = false when the space should stay serial. The scan
// has no bound pruning, so the aggregated counters match the serial walk
// exactly (the shared root plus every subtree's nodes); incumbents fold in
// ascending chunk order through the same betterResult comparison the serial
// stream applies.
func parallelOptimalCapped(p, d int, obj Objective, caps []int, stats *SearchStats) (Result, bool) {
	if p == 1 || d == 1 {
		return Result{}, false
	}
	brute := CountElementary(p, d)
	factors := numutil.Factorize(p)
	dists := make([][][]int, len(factors))
	for j, fac := range factors {
		dists[j] = Distributions(fac.Exp, d)
	}
	if !useParallelSearch(brute, len(dists[0])) {
		return Result{}, false
	}
	stats.BruteForceLeaves = brute
	stats.Factors = len(factors)
	for j := range dists {
		stats.Distributions += len(dists[j])
	}
	alpha := factors[0].Prime
	outs := runChunks(len(dists[0]), func(i0 int, out *chunkOut) {
		gamma := make([]int, d)
		for i := range gamma {
			gamma[i] = 1
		}
		for i, e := range dists[0][i0] {
			gamma[i] *= numutil.Pow(alpha, e)
		}
		out.best = Result{Cost: math.Inf(1)}
		stopped := false
		elemRec(factors, dists, 1, gamma, &out.stats, &stopped, func(g []int) bool {
			for i, gi := range g {
				if gi > caps[i] {
					out.stats.PrunedCap++
					out.stats.LeavesEvaluated-- // streamed but never costed
					return true
				}
			}
			c := obj.Cost(g)
			if betterResult(c, g, out.best) {
				out.best = Result{Gamma: numutil.CopyInts(g), Cost: c}
			}
			return true
		})
	})
	stats.NodesVisited++ // the shared root the chunks fan out of
	best := Result{Cost: math.Inf(1)}
	for i := range outs {
		stats.NodesVisited += outs[i].stats.NodesVisited
		stats.LeavesEvaluated += outs[i].stats.LeavesEvaluated
		stats.PrunedCap += outs[i].stats.PrunedCap
		if outs[i].best.Gamma != nil && betterResult(outs[i].best.Cost, outs[i].best.Gamma, best) {
			best = outs[i].best
		}
	}
	return best, true
}

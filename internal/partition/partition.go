// Package partition implements Section 3 of Darte, Chavarría-Miranda, Fowler
// and Mellor-Crummey, "Generalized Multipartitioning for Multi-dimensional
// Arrays" (IPDPS 2002): the objective function for line-sweep computations
// over a multipartitioned array, the characterization of elementary
// partitionings (Lemma 1), the generator of per-factor exponent distributions
// (the paper's Figure 2), and the optimized exhaustive search for an optimal
// partitioning.
//
// Terminology follows the paper. p is the number of processors with prime
// factorization p = ∏ αⱼ^rⱼ; d is the number of array dimensions; γᵢ is the
// number of tiles the array is cut into along dimension i. A partitioning
// (γᵢ) is valid when, for every i, p divides ∏_{j≠i} γⱼ — the necessary and
// sufficient condition for a balanced multipartitioned mapping to exist
// (Section 4). A line sweep along dimension i runs γᵢ computation phases
// separated by γᵢ−1 communication phases, so the tunable part of the total
// sweep cost is Σᵢ γᵢλᵢ where λᵢ = K₂ + K₃(p)·η/ηᵢ folds the per-phase
// start-up cost and the per-element bandwidth cost of the hyper-surface
// communicated along dimension i.
package partition

import (
	"fmt"
	"math"
	"sort"

	"genmp/internal/numutil"
)

// Objective is the linear objective Σᵢ γᵢ·Lambda[i] minimized by the
// partitioning search. Lambda entries must be positive: Lemma 1 (and with it
// the restriction of the search to elementary partitionings) relies on the
// objective being strictly increasing in every γᵢ.
type Objective struct {
	Lambda []float64
}

// UniformObjective returns the objective λᵢ = 1 for all i, which minimizes
// the total number of computation phases Σγᵢ (the "number of phases is the
// critical term" simplification in Section 3.1).
func UniformObjective(d int) Objective {
	lambda := make([]float64, d)
	for i := range lambda {
		lambda[i] = 1
	}
	return Objective{Lambda: lambda}
}

// VolumeObjective returns λᵢ = η/ηᵢ (up to the dropped constant factor
// K₃(p)), which minimizes the communicated volume Σᵢ γᵢ·η/ηᵢ — the "volume of
// communications is the critical term" simplification in Section 3.1. Larger
// dimensions get relatively more cuts.
func VolumeObjective(eta []int) Objective {
	etaTotal := 1.0
	for _, e := range eta {
		etaTotal *= float64(e)
	}
	lambda := make([]float64, len(eta))
	for i, e := range eta {
		lambda[i] = etaTotal / float64(e)
	}
	return Objective{Lambda: lambda}
}

// MachineObjective returns the full per-phase cost of Section 3.1:
// λᵢ = K₂ + K₃·η/ηᵢ, with K₂ the communication start-up cost and K₃ the
// (possibly p-dependent) per-element transfer cost.
func MachineObjective(eta []int, k2, k3 float64) Objective {
	lambda := VolumeObjective(eta).Lambda
	for i := range lambda {
		lambda[i] = k2 + k3*lambda[i]
	}
	return Objective{Lambda: lambda}
}

// Cost evaluates the objective Σᵢ γᵢ·λᵢ for a partitioning.
func (o Objective) Cost(gamma []int) float64 {
	if len(gamma) != len(o.Lambda) {
		panic(fmt.Sprintf("partition: Cost: partitioning has %d dims, objective has %d", len(gamma), len(o.Lambda)))
	}
	c := 0.0
	for i, g := range gamma {
		c += float64(g) * o.Lambda[i]
	}
	return c
}

func (o Objective) validate(d int) error {
	if len(o.Lambda) != d {
		return fmt.Errorf("partition: objective has %d weights, want %d", len(o.Lambda), d)
	}
	for i, l := range o.Lambda {
		if l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("partition: objective weight λ[%d] = %v must be positive and finite", i, l)
		}
	}
	return nil
}

// IsValid reports whether (γᵢ) is a valid partitioning for p processors:
// all γᵢ ≥ 1 and, for every i, p divides ∏_{j≠i} γⱼ. Validity guarantees
// that every hyper-rectangular slab along any partitioned dimension holds a
// multiple of p tiles, so it can be balanced across all processors.
func IsValid(p int, gamma []int) bool {
	if p < 1 || len(gamma) == 0 {
		return false
	}
	for _, g := range gamma {
		if g < 1 {
			return false
		}
	}
	for i := range gamma {
		if numutil.ProdExcept(gamma, i)%p != 0 {
			return false
		}
	}
	return true
}

// IsElementary reports whether (γᵢ) is an elementary partitioning for p:
// a valid partitioning satisfying the Lemma 1 conditions for every prime
// factor αⱼ of p — αⱼ appears exactly rⱼ+mⱼ times across the γᵢ where mⱼ is
// its maximum multiplicity in any single γᵢ, that maximum is attained in at
// least two γᵢ, and no other primes appear. Elementary partitionings are the
// ones that cannot be obtained by paving a coarser multipartitioning; every
// optimal partitioning is elementary.
func IsElementary(p int, gamma []int) bool {
	if !IsValid(p, gamma) {
		return false
	}
	// No γᵢ may contain a prime that does not divide p.
	factors := numutil.Factorize(p)
	for _, g := range gamma {
		rem := g
		for _, f := range factors {
			for rem%f.Prime == 0 {
				rem /= f.Prime
			}
		}
		if rem != 1 {
			return false
		}
	}
	for _, f := range factors {
		total, maxMult, maxCount := 0, 0, 0
		for _, g := range gamma {
			e := 0
			for g%f.Prime == 0 {
				g /= f.Prime
				e++
			}
			total += e
			switch {
			case e > maxMult:
				maxMult, maxCount = e, 1
			case e == maxMult:
				maxCount++
			}
		}
		if total != f.Exp+maxMult || maxCount < 2 {
			return false
		}
	}
	return true
}

// Distributions implements the paper's Figure 2: it returns every
// distribution of r instances of one prime factor into d bins that satisfies
// the Lemma 1 optimality condition — the bins sum to r+m where m is the
// maximum bin value, and at least two bins equal m. r ≥ 1 and d ≥ 2 are
// required (with d = 1 no valid multipartitioning exists unless p = 1).
//
// The generation is the paper's recursive procedure P, which emits each
// distribution exactly once in linear time per distribution.
func Distributions(r, d int) [][]int {
	var out [][]int
	EachDistribution(r, d, func(bins []int) bool {
		out = append(out, numutil.CopyInts(bins))
		return true
	})
	return out
}

// EachDistribution is the streaming form of Distributions. It calls f with
// each distribution (the slice is reused; copy to retain) and stops early if
// f returns false.
func EachDistribution(r, d int, f func(bins []int) bool) {
	if r < 1 {
		panic(fmt.Sprintf("partition: EachDistribution: r = %d must be ≥ 1", r))
	}
	if d < 2 {
		panic(fmt.Sprintf("partition: EachDistribution: d = %d must be ≥ 2", d))
	}
	bins := make([]int, d)
	stopped := false
	// m ranges over the possible maximum multiplicities: ⌈r/(d−1)⌉ … r.
	for m := numutil.CeilDiv(r, d-1); m <= r && !stopped; m++ {
		distribRec(r+m, m, 2, 0, bins, f, &stopped)
	}
}

// distribRec is the paper's procedure P(n, m, c, t, d) with 0-based bin
// index t: distribute n elements into bins[t:], each at most m, with at
// least c bins equal to m.
func distribRec(n, m, c, t int, bins []int, f func([]int) bool, stopped *bool) {
	if *stopped {
		return
	}
	d := len(bins)
	if t == d-1 {
		bins[t] = n
		if !f(bins) {
			*stopped = true
		}
		return
	}
	remaining := d - 1 - t // bins after this one
	lo := numutil.MaxInt(0, n-remaining*m)
	hi := numutil.MinInt(m-1, n-c*m)
	for i := lo; i <= hi; i++ {
		bins[t] = i
		distribRec(n-i, m, c, t+1, bins, f, stopped)
		if *stopped {
			return
		}
	}
	if n >= m {
		bins[t] = m
		distribRec(n-m, m, numutil.MaxInt(0, c-1), t+1, bins, f, stopped)
	}
}

// Elementary returns every elementary partitioning of p processors over d
// dimensions, as γ vectors. Permutations that place the cuts on different
// dimensions are distinct entries (the objective weights differ per
// dimension). For p = 1 the single partitioning (1,…,1) is returned.
func Elementary(p, d int) [][]int {
	var out [][]int
	EachElementary(p, d, func(gamma []int) bool {
		out = append(out, numutil.CopyInts(gamma))
		return true
	})
	return out
}

// EachElementary streams every elementary partitioning of p over d
// dimensions to f (slice reused; copy to retain), stopping early if f
// returns false. It panics if p < 1 or d < 1; for d = 1 only p = 1 has a
// valid partitioning.
func EachElementary(p, d int, f func(gamma []int) bool) {
	EachElementaryStats(p, d, nil, f)
}

// EachElementaryStats is EachElementary with search accounting: when stats is
// non-nil, the factor count, generated distributions, visited nodes and
// streamed leaves are recorded.
func EachElementaryStats(p, d int, stats *SearchStats, f func(gamma []int) bool) {
	if p < 1 {
		panic(fmt.Sprintf("partition: EachElementary: p = %d must be ≥ 1", p))
	}
	if d < 1 {
		panic(fmt.Sprintf("partition: EachElementary: d = %d must be ≥ 1", d))
	}
	if stats == nil {
		stats = &SearchStats{} // discard counts without nil checks below
	}
	if pm := partMetricsPtr.Load(); pm != nil {
		pre := *stats
		defer func() { pm.add(stats.minus(pre)) }()
	}
	stats.BruteForceLeaves = CountElementary(p, d)
	gamma := make([]int, d)
	for i := range gamma {
		gamma[i] = 1
	}
	if p == 1 {
		stats.NodesVisited++
		stats.LeavesEvaluated++
		f(gamma)
		return
	}
	if d == 1 {
		return // no valid partitioning of a 1-D array on p > 1 processors
	}
	factors := numutil.Factorize(p)
	stats.Factors = len(factors)
	// Pre-generate the distribution lists so the cross product below can
	// iterate them repeatedly.
	dists := make([][][]int, len(factors))
	for j, fac := range factors {
		dists[j] = Distributions(fac.Exp, d)
		stats.Distributions += len(dists[j])
	}
	stopped := false
	elemRec(factors, dists, 0, gamma, stats, &stopped, f)
}

// elemRec walks the cross product of the per-factor distributions from level
// j down, streaming complete partitionings to f. It is shared by the serial
// stream and the per-chunk workers of the parallel search, which enter at
// j = 1 after applying one top-level distribution themselves.
func elemRec(factors []numutil.Factor, dists [][][]int, j int, gamma []int, stats *SearchStats, stopped *bool, f func([]int) bool) {
	if *stopped {
		return
	}
	stats.NodesVisited++
	if j == len(factors) {
		stats.LeavesEvaluated++
		if !f(gamma) {
			*stopped = true
		}
		return
	}
	alpha := factors[j].Prime
	for _, bins := range dists[j] {
		for i, e := range bins {
			gamma[i] *= numutil.Pow(alpha, e)
		}
		elemRec(factors, dists, j+1, gamma, stats, stopped, f)
		for i, e := range bins {
			gamma[i] /= numutil.Pow(alpha, e)
		}
		if *stopped {
			return
		}
	}
}

// CountElementary returns the number of elementary partitionings of p over d
// dimensions — the size of the search space of the exhaustive algorithm,
// which the paper proves is O((d(d−1)/2)^((1+o(1))·log p / log log p)).
func CountElementary(p, d int) int {
	if p == 1 {
		return 1
	}
	if d == 1 {
		return 0
	}
	count := 1
	for _, fac := range numutil.Factorize(p) {
		n := 0
		EachDistribution(fac.Exp, d, func([]int) bool { n++; return true })
		count *= n
	}
	return count
}

// Result is a partitioning chosen by one of the search functions together
// with its objective value.
type Result struct {
	Gamma []int
	Cost  float64
}

// SearchStats counts the work a partitioning search performed. Pass a
// *SearchStats to the *Stats variants of the search functions to have it
// filled in; the plain variants skip all counting. The counters quantify the
// paper's complexity claim (Section 3.3): the elementary space is tiny
// compared to brute force, and branch-and-bound shrinks the walked part
// further.
type SearchStats struct {
	Factors          int // prime factors of p processed
	Distributions    int // per-factor exponent distributions generated (Figure 2), summed over factors
	NodesVisited     int // search-tree nodes expanded (incl. leaves)
	LeavesEvaluated  int // complete partitionings whose cost was evaluated
	PrunedBound      int // subtrees cut by the branch-and-bound lower bound
	PrunedCap        int // candidates discarded for exceeding a γ cap
	BruteForceLeaves int // CountElementary(p,d): leaves an unpruned exhaustive scan evaluates
}

// PruneRatio returns the fraction of the elementary space the search did NOT
// have to evaluate (0 when nothing was pruned, or when the space is empty).
func (s *SearchStats) PruneRatio() float64 {
	if s == nil || s.BruteForceLeaves == 0 {
		return 0
	}
	r := 1 - float64(s.LeavesEvaluated)/float64(s.BruteForceLeaves)
	if r < 0 {
		return 0
	}
	return r
}

func (s *SearchStats) String() string {
	if s == nil {
		return "search: no stats"
	}
	return fmt.Sprintf(
		"search: %d factors, %d distributions, %d nodes, %d/%d leaves evaluated (%.1f%% pruned: %d bound, %d cap)",
		s.Factors, s.Distributions, s.NodesVisited, s.LeavesEvaluated, s.BruteForceLeaves,
		100*s.PruneRatio(), s.PrunedBound, s.PrunedCap)
}

// Optimal returns a partitioning of p processors over d dimensions
// minimizing obj, using the paper's optimized exhaustive search over
// elementary partitionings with branch-and-bound pruning (partial products
// only grow, so the partial objective is a lower bound). Ties are broken
// deterministically toward the lexicographically smallest γ.
func Optimal(p, d int, obj Objective) (Result, error) {
	return OptimalStats(p, d, obj, nil)
}

// OptimalStats is Optimal with search accounting: when stats is non-nil it
// records the nodes visited, subtrees cut by the lower bound, leaves whose
// full cost was evaluated, and the size of the unpruned elementary space.
func OptimalStats(p, d int, obj Objective, stats *SearchStats) (Result, error) {
	if err := obj.validate(d); err != nil {
		return Result{}, err
	}
	if p < 1 {
		return Result{}, fmt.Errorf("partition: Optimal: p = %d must be ≥ 1", p)
	}
	if d < 1 {
		return Result{}, fmt.Errorf("partition: Optimal: d = %d must be ≥ 1", d)
	}
	if stats == nil {
		stats = &SearchStats{} // discard counts without nil checks below
	}
	pm := partMetricsPtr.Load()
	if pm != nil {
		pm.searchesOptimal.Inc()
		pm.inflight.Add(1)
		defer pm.inflight.Add(-1)
	}
	pre := *stats
	stats.BruteForceLeaves = CountElementary(p, d)
	if p == 1 {
		gamma := make([]int, d)
		for i := range gamma {
			gamma[i] = 1
		}
		stats.NodesVisited++
		stats.LeavesEvaluated++
		if pm != nil {
			pm.add(stats.minus(pre))
		}
		return Result{Gamma: gamma, Cost: obj.Cost(gamma)}, nil
	}
	if d == 1 {
		return Result{}, fmt.Errorf("partition: no valid multipartitioning of a 1-D array on %d > 1 processors", p)
	}

	factors := numutil.Factorize(p)
	stats.Factors = len(factors)
	// Process large primes first: their placement moves the partial cost the
	// most, which makes the lower-bound pruning bite early.
	sort.Slice(factors, func(a, b int) bool {
		return numutil.Pow(factors[a].Prime, factors[a].Exp) > numutil.Pow(factors[b].Prime, factors[b].Exp)
	})
	dists := make([][][]int, len(factors))
	for j, fac := range factors {
		dists[j] = Distributions(fac.Exp, d)
		stats.Distributions += len(dists[j])
	}

	gamma := make([]int, d)
	for i := range gamma {
		gamma[i] = 1
	}
	if useParallelSearch(stats.BruteForceLeaves, len(dists[0])) {
		res := parallelOptimal(factors, dists, d, obj, stats)
		// The chunks streamed their own counts from runChunks; only the
		// shared root node and the distribution generation remain.
		if pm != nil {
			pm.add(SearchStats{NodesVisited: 1, Distributions: stats.Distributions - pre.Distributions})
		}
		return res, nil
	}
	best := Result{Cost: math.Inf(1)}
	optimalRec(factors, dists, obj, 0, obj.Cost(gamma), gamma, &best, stats)
	if pm != nil {
		pm.add(stats.minus(pre))
	}
	return best, nil
}

// optimalRec is the branch-and-bound walk of the optimized exhaustive
// search from level j down. The partial objective is a lower bound because
// the remaining factors can only grow every γᵢ. Shared by the serial search
// and the per-chunk workers of the parallel search (which enter at j = 1
// with a chunk-local incumbent).
func optimalRec(factors []numutil.Factor, dists [][][]int, obj Objective, j int, partial float64, gamma []int, best *Result, stats *SearchStats) {
	if partial >= best.Cost {
		stats.PrunedBound++
		return // lower bound: remaining factors only increase every γᵢ
	}
	stats.NodesVisited++
	if j == len(factors) {
		stats.LeavesEvaluated++
		if partial < best.Cost || (partial == best.Cost && lexLess(gamma, best.Gamma)) {
			*best = Result{Gamma: numutil.CopyInts(gamma), Cost: partial}
		}
		return
	}
	alpha := factors[j].Prime
	for _, bins := range dists[j] {
		delta := 0.0
		for i, e := range bins {
			if e > 0 {
				grown := gamma[i] * numutil.Pow(alpha, e)
				delta += float64(grown-gamma[i]) * obj.Lambda[i]
				gamma[i] = grown
			}
		}
		optimalRec(factors, dists, obj, j+1, partial+delta, gamma, best, stats)
		for i, e := range bins {
			if e > 0 {
				gamma[i] /= numutil.Pow(alpha, e)
			}
		}
	}
}

// OptimalCapped returns the cheapest elementary partitioning with
// γᵢ ≤ caps[i] for every i — the practical constraint that a dimension
// cannot be cut into more pieces than it has elements (or, stricter, than
// some minimum block size allows, the dHPF limitation the paper describes
// for large prime factors). It fails when no elementary partitioning fits.
func OptimalCapped(p, d int, obj Objective, caps []int) (Result, error) {
	return OptimalCappedStats(p, d, obj, caps, nil)
}

// OptimalCappedStats is OptimalCapped with search accounting: when stats is
// non-nil it additionally records how many candidates the caps discarded.
func OptimalCappedStats(p, d int, obj Objective, caps []int, stats *SearchStats) (Result, error) {
	if err := obj.validate(d); err != nil {
		return Result{}, err
	}
	if len(caps) != d {
		return Result{}, fmt.Errorf("partition: OptimalCapped: %d caps for %d dimensions", len(caps), d)
	}
	if p < 1 || d < 1 {
		return Result{}, fmt.Errorf("partition: OptimalCapped: need p ≥ 1, d ≥ 1")
	}
	if d == 1 && p > 1 {
		return Result{}, fmt.Errorf("partition: no valid multipartitioning of a 1-D array on %d > 1 processors", p)
	}
	if stats == nil {
		stats = &SearchStats{}
	}
	pm := partMetricsPtr.Load()
	if pm != nil {
		pm.searchesCapped.Inc()
		pm.inflight.Add(1)
		defer pm.inflight.Add(-1)
	}
	preDist := stats.Distributions
	if res, ok := parallelOptimalCapped(p, d, obj, caps, stats); ok {
		// Chunk counts streamed from runChunks; publish the remainder. The
		// serial fallback below is accounted by EachElementaryStats itself.
		if pm != nil {
			pm.add(SearchStats{NodesVisited: 1, Distributions: stats.Distributions - preDist})
		}
		if res.Gamma == nil {
			return Result{}, fmt.Errorf("partition: no elementary partitioning of p = %d fits within caps %v", p, caps)
		}
		return res, nil
	}
	best := Result{Cost: math.Inf(1)}
	EachElementaryStats(p, d, stats, func(gamma []int) bool {
		for i, g := range gamma {
			if g > caps[i] {
				stats.PrunedCap++
				stats.LeavesEvaluated-- // streamed but never costed
				return true
			}
		}
		c := obj.Cost(gamma)
		if betterResult(c, gamma, best) {
			best = Result{Gamma: numutil.CopyInts(gamma), Cost: c}
		}
		return true
	})
	if best.Gamma == nil {
		return Result{}, fmt.Errorf("partition: no elementary partitioning of p = %d fits within caps %v", p, caps)
	}
	return best, nil
}

// OptimalAll returns every elementary partitioning achieving the minimum
// objective value (ties are common under symmetric weights — e.g. the
// orientations of one pattern), sorted lexicographically. The cost
// comparison uses an exact-equality criterion on the elementary costs
// evaluated the same way, so permutation ties are found reliably.
func OptimalAll(p, d int, obj Objective) ([]Result, error) {
	best, err := Optimal(p, d, obj)
	if err != nil {
		return nil, err
	}
	var out []Result
	EachElementary(p, d, func(gamma []int) bool {
		c := obj.Cost(gamma)
		if c <= best.Cost*(1+1e-12) {
			out = append(out, Result{Gamma: numutil.CopyInts(gamma), Cost: c})
		}
		return true
	})
	sort.Slice(out, func(a, b int) bool { return lexLess(out[a].Gamma, out[b].Gamma) })
	return out, nil
}

// BruteForceOptimal is a reference oracle used in tests: it scans every
// d-tuple of divisors of p, keeps the valid partitionings and returns the
// cheapest (ties toward lexicographically smallest). It is correct because
// every elementary partitioning has γᵢ | p (each prime's per-dimension
// multiplicity is at most mⱼ ≤ rⱼ) and Lemma 1 shows every optimal
// partitioning is elementary. Exponential in d; use only for small p.
func BruteForceOptimal(p, d int, obj Objective) Result {
	if err := obj.validate(d); err != nil {
		panic(err)
	}
	divs := numutil.Divisors(p)
	gamma := make([]int, d)
	best := Result{Cost: math.Inf(1)}
	var rec func(i int)
	rec = func(i int) {
		if i == d {
			if !IsValid(p, gamma) {
				return
			}
			c := obj.Cost(gamma)
			if c < best.Cost || (c == best.Cost && lexLess(gamma, best.Gamma)) {
				best = Result{Gamma: numutil.CopyInts(gamma), Cost: c}
			}
			return
		}
		for _, g := range divs {
			gamma[i] = g
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// OptimalPrimePower solves the single-prime-factor case p = α^r in
// polynomial time (the greedy path the paper mentions for p with one prime
// factor). For each candidate maximum multiplicity m it pins the two forced
// maxima on the dimensions with the smallest weights (rearrangement
// inequality) and distributes the remaining r−m exponents by marginal-cost
// greedy, which is optimal for a separable convex objective under a total
// and per-dimension cap.
func OptimalPrimePower(alpha, r, d int, obj Objective) (Result, error) {
	if err := obj.validate(d); err != nil {
		return Result{}, err
	}
	if alpha < 2 || r < 1 {
		return Result{}, fmt.Errorf("partition: OptimalPrimePower: need α ≥ 2, r ≥ 1 (got α=%d, r=%d)", alpha, r)
	}
	if d < 2 {
		return Result{}, fmt.Errorf("partition: OptimalPrimePower: need d ≥ 2")
	}
	// Dimensions sorted by increasing λ: cheaper dimensions take more cuts.
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return obj.Lambda[order[a]] < obj.Lambda[order[b]] })

	best := Result{Cost: math.Inf(1)}
	for m := numutil.CeilDiv(r, d-1); m <= r; m++ {
		exps := make([]int, d) // exponent per (sorted) position
		exps[0], exps[1] = m, m
		remaining := r - m
		// Greedy: repeatedly grant one more exponent where the marginal cost
		// λ·α^e·(α−1) is smallest, capped at m per dimension.
		for remaining > 0 {
			bestPos, bestMarginal := -1, math.Inf(1)
			for pos := 2; pos < d; pos++ {
				if exps[pos] >= m {
					continue
				}
				marginal := obj.Lambda[order[pos]] * float64(numutil.Pow(alpha, exps[pos])) * float64(alpha-1)
				if marginal < bestMarginal {
					bestPos, bestMarginal = pos, marginal
				}
			}
			if bestPos < 0 {
				break // cannot place remaining exponents under the cap
			}
			exps[bestPos]++
			remaining--
		}
		if remaining > 0 {
			continue
		}
		gamma := make([]int, d)
		for pos, e := range exps {
			gamma[order[pos]] = numutil.Pow(alpha, e)
		}
		c := obj.Cost(gamma)
		if c < best.Cost || (c == best.Cost && lexLess(gamma, best.Gamma)) {
			best = Result{Gamma: gamma, Cost: c}
		}
	}
	if best.Gamma == nil {
		return Result{}, fmt.Errorf("partition: OptimalPrimePower: no feasible distribution (α=%d, r=%d, d=%d)", alpha, r, d)
	}
	return best, nil
}

// TilesPerProcessor returns ∏γᵢ / p, the number of tiles each processor owns
// under a balanced mapping of the partitioning.
func TilesPerProcessor(p int, gamma []int) int {
	return numutil.Prod(gamma...) / p
}

// Describe renders a partitioning like "4×4×2".
func Describe(gamma []int) string {
	s := ""
	for i, g := range gamma {
		if i > 0 {
			s += "×"
		}
		s += fmt.Sprintf("%d", g)
	}
	return s
}

func lexLess(a, b []int) bool {
	if b == nil {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// betterResult compares a candidate against the incumbent with a relative
// epsilon: summation order makes the costs of tied orientations differ in
// the last bits, so an exact comparison would make the tie-break (toward
// the lexicographically smallest γ) order-dependent.
func betterResult(c float64, gamma []int, best Result) bool {
	if best.Gamma == nil {
		return true
	}
	scale := best.Cost
	if c > scale {
		scale = c
	}
	switch {
	case c < best.Cost-1e-12*scale:
		return true
	case c > best.Cost+1e-12*scale:
		return false
	default:
		return lexLess(gamma, best.Gamma)
	}
}

package partition

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"genmp/internal/numutil"
)

func TestIsValidBasics(t *testing.T) {
	cases := []struct {
		p     int
		gamma []int
		want  bool
	}{
		{1, []int{1, 1, 1}, true},
		{4, []int{2, 2, 2}, true},
		{4, []int{4, 4, 1}, true},
		{4, []int{2, 2, 1}, false}, // slab along dim 3 has 4 tiles but slabs along 1,2 have 2
		{8, []int{4, 4, 2}, true},
		{8, []int{8, 8, 1}, true},
		{8, []int{4, 2, 2}, false},
		{16, []int{4, 4, 4}, true}, // Figure 1
		{30, []int{10, 15, 6}, true},
		{30, []int{30, 30, 1}, true},
		{30, []int{15, 6, 5}, false},
		{6, []int{6, 6}, true},
		{6, []int{6, 3}, false},
		{5, []int{5, 5}, true},
		{2, []int{2}, false}, // d=1 cannot be valid for p>1
		{1, []int{1}, true},  // trivial
		{4, []int{0, 4}, false},
		{0, []int{1}, false},
	}
	for _, c := range cases {
		if got := IsValid(c.p, c.gamma); got != c.want {
			t.Errorf("IsValid(%d, %v) = %v, want %v", c.p, c.gamma, got, c.want)
		}
	}
}

func TestDistributionsD2(t *testing.T) {
	// For d = 2 the only Lemma-1 distribution is (r, r).
	for r := 1; r <= 10; r++ {
		got := Distributions(r, 2)
		if len(got) != 1 || !numutil.EqualInts(got[0], []int{r, r}) {
			t.Errorf("Distributions(%d, 2) = %v, want [[%d %d]]", r, got, r, r)
		}
	}
}

func TestDistributionsAgainstBruteForce(t *testing.T) {
	// Brute force: all d-tuples with entries ≤ r, sum = r + max, max attained
	// at least twice.
	brute := func(r, d int) [][]int {
		var out [][]int
		shape := make([]int, d)
		for i := range shape {
			shape[i] = r + 1
		}
		numutil.EachCoord(shape, func(bins []int) {
			m, cnt, sum := 0, 0, 0
			for _, b := range bins {
				sum += b
				switch {
				case b > m:
					m, cnt = b, 1
				case b == m:
					cnt++
				}
			}
			if m >= 1 && cnt >= 2 && sum == r+m {
				out = append(out, numutil.CopyInts(bins))
			}
		})
		return out
	}
	for d := 2; d <= 5; d++ {
		for r := 1; r <= 7; r++ {
			got := Distributions(r, d)
			want := brute(r, d)
			sortSlices(got)
			sortSlices(want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Distributions(%d, %d): got %d distributions, brute force %d\n got: %v\nwant: %v",
					r, d, len(got), len(want), got, want)
			}
		}
	}
}

func TestDistributionsNoDuplicates(t *testing.T) {
	for d := 2; d <= 6; d++ {
		for r := 1; r <= 8; r++ {
			seen := map[string]bool{}
			for _, bins := range Distributions(r, d) {
				key := Describe(bins)
				if seen[key] {
					t.Fatalf("Distributions(%d, %d): duplicate %v", r, d, bins)
				}
				seen[key] = true
			}
		}
	}
}

func TestEachDistributionEarlyStop(t *testing.T) {
	n := 0
	EachDistribution(5, 3, func([]int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d distributions, want 3", n)
	}
}

func TestElementaryExamplesFromPaper(t *testing.T) {
	// Section 3.2: with 8 processors in 3-D, only 4×4×2, 8×8×1 and their
	// permutations are elementary.
	checkPatterns(t, 8, 3, [][]int{{2, 4, 4}, {1, 8, 8}})
	// With p = 5·3·2 = 30: 10×15×6, 15×30×2, 10×30×3, 5×30×6, 30×30×1.
	checkPatterns(t, 30, 3, [][]int{{6, 10, 15}, {2, 15, 30}, {3, 10, 30}, {5, 6, 30}, {1, 30, 30}})
}

// checkPatterns asserts the set of elementary partitionings of p over d,
// viewed as sorted multisets, is exactly wantSorted.
func checkPatterns(t *testing.T, p, d int, wantSorted [][]int) {
	t.Helper()
	got := map[string]bool{}
	for _, g := range Elementary(p, d) {
		got[Describe(numutil.SortedCopy(g))] = true
	}
	want := map[string]bool{}
	for _, w := range wantSorted {
		want[Describe(w)] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("elementary patterns for p=%d d=%d:\n got %v\nwant %v", p, d, got, want)
	}
}

func TestElementaryAllValidAndElementary(t *testing.T) {
	for p := 1; p <= 64; p++ {
		for d := 2; d <= 4; d++ {
			for _, g := range Elementary(p, d) {
				if !IsValid(p, g) {
					t.Fatalf("p=%d d=%d: enumerated partitioning %v is invalid", p, d, g)
				}
				if !IsElementary(p, g) {
					t.Fatalf("p=%d d=%d: enumerated partitioning %v fails IsElementary", p, d, g)
				}
			}
		}
	}
}

func TestElementaryMatchesBruteForceFilter(t *testing.T) {
	// The enumeration must produce exactly the divisor tuples that pass
	// IsElementary.
	for _, p := range []int{2, 4, 6, 8, 12, 16, 18, 24, 30, 36, 49, 50, 64} {
		for d := 2; d <= 3; d++ {
			want := map[string]bool{}
			divs := numutil.Divisors(p)
			gamma := make([]int, d)
			var rec func(i int)
			rec = func(i int) {
				if i == d {
					if IsElementary(p, gamma) {
						want[Describe(gamma)] = true
					}
					return
				}
				for _, g := range divs {
					gamma[i] = g
					rec(i + 1)
				}
			}
			rec(0)
			got := map[string]bool{}
			for _, g := range Elementary(p, d) {
				got[Describe(g)] = true
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("p=%d d=%d: enumeration/filter mismatch:\n got %v\nwant %v", p, d, got, want)
			}
		}
	}
}

func TestCountElementary(t *testing.T) {
	if got := CountElementary(8, 3); got != 6 {
		t.Errorf("CountElementary(8, 3) = %d, want 6", got) // {4,4,2} and {8,8,1} × 3 perms
	}
	if got := CountElementary(30, 3); got != 27 {
		t.Errorf("CountElementary(30, 3) = %d, want 27", got) // 3 choices of excluded dim per prime
	}
	if got := CountElementary(1, 5); got != 1 {
		t.Errorf("CountElementary(1, 5) = %d, want 1", got)
	}
	if got := CountElementary(7, 1); got != 0 {
		t.Errorf("CountElementary(7, 1) = %d, want 0", got)
	}
	for p := 2; p <= 100; p++ {
		for d := 2; d <= 4; d++ {
			if got, want := CountElementary(p, d), len(Elementary(p, d)); got != want {
				t.Fatalf("CountElementary(%d, %d) = %d but enumeration yields %d", p, d, got, want)
			}
		}
	}
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []int{1, 2, 3, 4, 6, 8, 9, 12, 16, 18, 20, 24, 25, 30, 36, 48, 49, 50, 64, 72, 81, 96, 100} {
		for d := 2; d <= 4; d++ {
			for trial := 0; trial < 4; trial++ {
				lambda := make([]float64, d)
				for i := range lambda {
					lambda[i] = 0.1 + 10*rng.Float64()
				}
				obj := Objective{Lambda: lambda}
				got, err := Optimal(p, d, obj)
				if err != nil {
					t.Fatalf("Optimal(%d, %d): %v", p, d, err)
				}
				want := BruteForceOptimal(p, d, obj)
				if !approxEq(got.Cost, want.Cost) {
					t.Errorf("p=%d d=%d λ=%v: Optimal cost %.6g (γ=%v) ≠ brute force %.6g (γ=%v)",
						p, d, lambda, got.Cost, got.Gamma, want.Cost, want.Gamma)
				}
				if !IsValid(p, got.Gamma) {
					t.Errorf("p=%d d=%d: Optimal returned invalid %v", p, d, got.Gamma)
				}
			}
		}
	}
}

func TestLemma1OptimaAreElementary(t *testing.T) {
	// The converse direction of restricting the search: for random positive
	// weights, the brute-force optimum over ALL valid divisor tuples is
	// always an elementary partitioning — exactly Lemma 1's claim.
	rng := rand.New(rand.NewSource(123))
	for _, p := range []int{2, 4, 6, 8, 12, 16, 18, 24, 30, 36, 48, 60} {
		for d := 2; d <= 3; d++ {
			for trial := 0; trial < 5; trial++ {
				lambda := make([]float64, d)
				for i := range lambda {
					lambda[i] = 0.05 + 8*rng.Float64()
				}
				best := BruteForceOptimal(p, d, Objective{Lambda: lambda})
				if !IsElementary(p, best.Gamma) {
					t.Errorf("p=%d d=%d λ=%v: brute-force optimum %v is not elementary (Lemma 1 violated?)",
						p, d, lambda, best.Gamma)
				}
			}
		}
	}
}

func TestOptimalUniform2DIsDiagonal(t *testing.T) {
	// In 2-D the optimal multipartitioning cuts both dimensions into p
	// pieces (Johnsson et al.; "in 2D this yields an optimal
	// multipartitioning").
	for p := 1; p <= 40; p++ {
		res, err := Optimal(p, 2, UniformObjective(2))
		if err != nil {
			t.Fatal(err)
		}
		if !numutil.EqualInts(res.Gamma, []int{p, p}) {
			t.Errorf("p=%d: optimal 2-D partitioning = %v, want [%d %d]", p, res.Gamma, p, p)
		}
	}
}

func TestOptimalPerfectSquare3DIsDiagonal(t *testing.T) {
	// For p a perfect square and a cubic domain, the optimal 3-D
	// partitioning is √p×√p×√p (diagonal multipartitioning).
	for _, p := range []int{4, 9, 16, 25, 36, 49, 64, 81} {
		res, err := Optimal(p, 3, UniformObjective(3))
		if err != nil {
			t.Fatal(err)
		}
		s := numutil.ISqrt(p)
		if !numutil.EqualInts(res.Gamma, []int{s, s, s}) {
			t.Errorf("p=%d: optimal = %v, want [%d %d %d]", p, res.Gamma, s, s, s)
		}
	}
}

func TestSkewedDomainRemark(t *testing.T) {
	// Section 3.1 remark: with p = 4 and η₁ = η₂ ≥ 4·η₃, cutting the first
	// two dimensions into 4 pieces each (γ = (4,4,1)) communicates less than
	// the classical 2×2×2 partitioning.
	eta := []int{500, 500, 100} // strictly more than 4× (exactly 4× ties)
	obj := VolumeObjective(eta)
	res, err := Optimal(4, 3, obj)
	if err != nil {
		t.Fatal(err)
	}
	if !numutil.EqualInts(res.Gamma, []int{4, 4, 1}) {
		t.Errorf("skewed domain: optimal = %v, want [4 4 1]", res.Gamma)
	}
	if c222 := obj.Cost([]int{2, 2, 2}); res.Cost >= c222 {
		t.Errorf("skewed domain: cost(4,4,1) = %g should beat cost(2,2,2) = %g", res.Cost, c222)
	}
	// On a cubic domain the classical partitioning wins instead.
	cubic := VolumeObjective([]int{100, 100, 100})
	res2, err := Optimal(4, 3, cubic)
	if err != nil {
		t.Fatal(err)
	}
	if !numutil.EqualInts(res2.Gamma, []int{2, 2, 2}) {
		t.Errorf("cubic domain: optimal = %v, want [2 2 2]", res2.Gamma)
	}
}

func TestOptimalPrimePowerMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, pp := range []struct{ alpha, r int }{{2, 1}, {2, 3}, {2, 6}, {3, 2}, {3, 4}, {5, 2}, {7, 3}} {
		p := numutil.Pow(pp.alpha, pp.r)
		for d := 2; d <= 5; d++ {
			for trial := 0; trial < 5; trial++ {
				lambda := make([]float64, d)
				for i := range lambda {
					lambda[i] = 0.1 + 5*rng.Float64()
				}
				obj := Objective{Lambda: lambda}
				greedy, err := OptimalPrimePower(pp.alpha, pp.r, d, obj)
				if err != nil {
					t.Fatal(err)
				}
				exact, err := Optimal(p, d, obj)
				if err != nil {
					t.Fatal(err)
				}
				if !approxEq(greedy.Cost, exact.Cost) {
					t.Errorf("α=%d r=%d d=%d λ=%v: greedy cost %.6g (γ=%v) ≠ exhaustive %.6g (γ=%v)",
						pp.alpha, pp.r, d, lambda, greedy.Cost, greedy.Gamma, exact.Cost, exact.Gamma)
				}
				if !IsElementary(p, greedy.Gamma) {
					t.Errorf("α=%d r=%d d=%d: greedy result %v is not elementary", pp.alpha, pp.r, d, greedy.Gamma)
				}
			}
		}
	}
}

func TestOptimalCapped(t *testing.T) {
	// p = 45 on a 12³ domain: the unconstrained optimum 3×15×15 does not
	// fit; no elementary partitioning does.
	if _, err := OptimalCapped(45, 3, UniformObjective(3), []int{12, 12, 12}); err == nil {
		t.Error("p=45 on 12³ should have no feasible elementary partitioning")
	}
	// p = 8 capped at (4, 8, 8): 4×4×2 and permutations with γ₀ ≤ 4 remain.
	res, err := OptimalCapped(8, 3, UniformObjective(3), []int{4, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !numutil.EqualInts(numutil.SortedCopy(res.Gamma), []int{2, 4, 4}) || res.Gamma[0] > 4 {
		t.Errorf("capped optimum = %v", res.Gamma)
	}
	// Unconstrained caps reproduce Optimal.
	free, err := OptimalCapped(30, 3, UniformObjective(3), []int{1000, 1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Optimal(30, 3, UniformObjective(3))
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(free.Cost, exact.Cost) {
		t.Errorf("capped %g vs exact %g", free.Cost, exact.Cost)
	}
	// Bad arguments.
	if _, err := OptimalCapped(4, 3, UniformObjective(3), []int{4, 4}); err == nil {
		t.Error("cap arity mismatch should fail")
	}
	if _, err := OptimalCapped(4, 1, UniformObjective(1), []int{4}); err == nil {
		t.Error("d=1 with p>1 should fail")
	}
}

func TestOptimalAllFindsAllOrientations(t *testing.T) {
	// Uniform weights on p=8, d=3: the optimum 4×4×2 has 3 orientations.
	res, err := OptimalAll(8, 3, UniformObjective(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d tied optima, want 3: %v", len(res), res)
	}
	for _, r := range res {
		if !numutil.EqualInts(numutil.SortedCopy(r.Gamma), []int{2, 4, 4}) {
			t.Errorf("unexpected optimum %v", r.Gamma)
		}
	}
	// Asymmetric weights break the tie.
	res2, err := OptimalAll(8, 3, Objective{Lambda: []float64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 1 {
		t.Fatalf("asymmetric weights should give a unique optimum, got %d", len(res2))
	}
	if !numutil.EqualInts(res2[0].Gamma, []int{4, 4, 2}) {
		t.Errorf("asymmetric optimum = %v, want [4 4 2] (cheap dims take more cuts)", res2[0].Gamma)
	}
}

func TestOptimalErrors(t *testing.T) {
	if _, err := Optimal(4, 1, UniformObjective(1)); err == nil {
		t.Error("Optimal(4, 1) should fail: no 1-D multipartitioning for p > 1")
	}
	if _, err := Optimal(0, 3, UniformObjective(3)); err == nil {
		t.Error("Optimal(0, 3) should fail")
	}
	if _, err := Optimal(4, 3, Objective{Lambda: []float64{1, -1, 1}}); err == nil {
		t.Error("negative λ should fail")
	}
	if _, err := Optimal(4, 3, UniformObjective(2)); err == nil {
		t.Error("objective/dimension mismatch should fail")
	}
}

func TestOptimalP1(t *testing.T) {
	res, err := Optimal(1, 3, UniformObjective(3))
	if err != nil {
		t.Fatal(err)
	}
	if !numutil.EqualInts(res.Gamma, []int{1, 1, 1}) {
		t.Errorf("Optimal(1, 3) = %v, want [1 1 1]", res.Gamma)
	}
}

func TestValidityIsPermutationInvariant(t *testing.T) {
	f := func(a, b, c uint8, pp uint8) bool {
		gamma := []int{int(a%12) + 1, int(b%12) + 1, int(c%12) + 1}
		p := int(pp%30) + 1
		v := IsValid(p, gamma)
		ok := true
		numutil.Permutations(3, func(perm []int) {
			g := []int{gamma[perm[0]], gamma[perm[1]], gamma[perm[2]]}
			if IsValid(p, g) != v {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTilesPerProcessor(t *testing.T) {
	if got := TilesPerProcessor(16, []int{4, 4, 4}); got != 4 {
		t.Errorf("tiles per proc for Figure 1 = %d, want 4", got)
	}
	if got := TilesPerProcessor(8, []int{4, 4, 2}); got != 4 {
		t.Errorf("tiles per proc for 4×4×2 on 8 = %d, want 4", got)
	}
	if got := TilesPerProcessor(50, []int{5, 10, 10}); got != 10 {
		t.Errorf("tiles per proc for 5×10×10 on 50 = %d, want 10", got)
	}
}

func TestDescribe(t *testing.T) {
	if got := Describe([]int{4, 4, 2}); got != "4×4×2" {
		t.Errorf("Describe = %q", got)
	}
}

func TestEnumerationCountsGrowth(t *testing.T) {
	// Sanity on the complexity claim: the number of elementary partitionings
	// stays modest (polynomial-ish in log p) even at p = 1000, and grows
	// with d.
	c3 := CountElementary(1000, 3) // 1000 = 2³·5³
	c4 := CountElementary(1000, 4)
	c5 := CountElementary(1000, 5)
	if c3 <= 0 || c4 < c3 || c5 < c4 {
		t.Errorf("counts should grow with d: d=3:%d d=4:%d d=5:%d", c3, c4, c5)
	}
	if c5 > 100000 {
		t.Errorf("enumeration for p=1000, d=5 unexpectedly large: %d", c5)
	}
	// Highly composite p has more elementary partitionings than a prime
	// power of similar size.
	if CountElementary(720, 3) <= CountElementary(729, 3) {
		t.Errorf("720 (2⁴3²5) should have more elementary partitionings than 729 (3⁶): %d vs %d",
			CountElementary(720, 3), CountElementary(729, 3))
	}
}

func TestMachineObjective(t *testing.T) {
	// λᵢ = K₂ + K₃·η/ηᵢ with η = 1000·500·100.
	eta := []int{1000, 500, 100}
	obj := MachineObjective(eta, 2e-5, 1e-8)
	etaTotal := 1000.0 * 500 * 100
	for i, e := range eta {
		want := 2e-5 + 1e-8*etaTotal/float64(e)
		if d := obj.Lambda[i] - want; d > 1e-15 || d < -1e-15 {
			t.Errorf("λ[%d] = %g, want %g", i, obj.Lambda[i], want)
		}
	}
	// Shorter dimensions carry bigger per-phase surfaces, so higher λ.
	if !(obj.Lambda[2] > obj.Lambda[1] && obj.Lambda[1] > obj.Lambda[0]) {
		t.Errorf("λ not decreasing with extent: %v", obj.Lambda)
	}
}

func TestEachDistributionArgumentPanics(t *testing.T) {
	for _, c := range []struct{ r, d int }{{0, 3}, {3, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EachDistribution(%d, %d) should panic", c.r, c.d)
				}
			}()
			EachDistribution(c.r, c.d, func([]int) bool { return true })
		}()
	}
}

func TestObjectiveCostPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cost with mismatched dims should panic")
		}
	}()
	UniformObjective(2).Cost([]int{1, 2, 3})
}

// approxEq compares float costs up to accumulation-order rounding.
func approxEq(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= 1e-9*scale
}

func sortSlices(s [][]int) {
	sort.Slice(s, func(a, b int) bool {
		for i := range s[a] {
			if s[a][i] != s[b][i] {
				return s[a][i] < s[b][i]
			}
		}
		return false
	})
}

func TestSearchStatsOptimal(t *testing.T) {
	for _, p := range []int{16, 33, 64, 105, 1024} {
		var st SearchStats
		res, err := OptimalStats(p, 3, UniformObjective(3), &st)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		plain, err := Optimal(p, 3, UniformObjective(3))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, plain) {
			t.Errorf("p=%d: stats variant result %+v differs from plain %+v", p, res, plain)
		}
		if st.BruteForceLeaves != CountElementary(p, 3) {
			t.Errorf("p=%d: BruteForceLeaves %d != CountElementary %d", p, st.BruteForceLeaves, CountElementary(p, 3))
		}
		if st.LeavesEvaluated < 1 || st.LeavesEvaluated > st.BruteForceLeaves {
			t.Errorf("p=%d: LeavesEvaluated %d out of [1, %d]", p, st.LeavesEvaluated, st.BruteForceLeaves)
		}
		if st.NodesVisited < st.LeavesEvaluated {
			t.Errorf("p=%d: NodesVisited %d < LeavesEvaluated %d", p, st.NodesVisited, st.LeavesEvaluated)
		}
		if st.Factors != len(numutil.Factorize(p)) {
			t.Errorf("p=%d: Factors %d", p, st.Factors)
		}
		if r := st.PruneRatio(); r < 0 || r >= 1 {
			t.Errorf("p=%d: PruneRatio %g out of [0,1)", p, r)
		}
		if st.String() == "" {
			t.Error("empty String()")
		}
	}
	// Multi-factor p with skewed weights: the bound must actually prune.
	var st SearchStats
	if _, err := OptimalStats(3600, 3, Objective{Lambda: []float64{1, 50, 2500}}, &st); err != nil {
		t.Fatal(err)
	}
	if st.PrunedBound == 0 {
		t.Errorf("expected branch-and-bound pruning at p=3600: %+v", st)
	}
	if st.LeavesEvaluated >= st.BruteForceLeaves {
		t.Errorf("pruned search evaluated the whole space: %+v", st)
	}
}

func TestSearchStatsCapped(t *testing.T) {
	// For p = 64 the elementary space is {8×8×8, 16×16×4, 32×32×2, 64×64×1}
	// and orientations; caps of 8 exclude everything but 8×8×8, so the cap
	// pruning must fire on every other candidate.
	var st SearchStats
	res, err := OptimalCappedStats(64, 3, UniformObjective(3), []int{8, 8, 8}, &st)
	if err != nil {
		t.Fatal(err)
	}
	if Describe(res.Gamma) != "8×8×8" {
		t.Errorf("capped optimum %v", res.Gamma)
	}
	if st.PrunedCap == 0 {
		t.Errorf("caps excluded candidates but PrunedCap = 0: %+v", st)
	}
	if st.LeavesEvaluated+st.PrunedCap != st.BruteForceLeaves {
		t.Errorf("capped accounting: evaluated %d + capped %d != space %d",
			st.LeavesEvaluated, st.PrunedCap, st.BruteForceLeaves)
	}
	plain, err := OptimalCapped(64, 3, UniformObjective(3), []int{8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Errorf("stats variant %+v differs from plain %+v", res, plain)
	}
}

func TestSearchStatsEachElementary(t *testing.T) {
	var st SearchStats
	n := 0
	EachElementaryStats(60, 3, &st, func([]int) bool { n++; return true })
	if st.LeavesEvaluated != n || n != CountElementary(60, 3) {
		t.Errorf("streamed %d, stats %+v, count %d", n, st, CountElementary(60, 3))
	}
	if st.Distributions == 0 || st.Factors != 3 {
		t.Errorf("stats %+v", st)
	}
	// p = 1: the trivial partitioning is one leaf.
	st = SearchStats{}
	EachElementaryStats(1, 4, &st, func([]int) bool { return true })
	if st.LeavesEvaluated != 1 || st.BruteForceLeaves != 1 {
		t.Errorf("p=1 stats %+v", st)
	}
}

package nas

import (
	"fmt"

	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/partition"
	"genmp/internal/plan"
	"genmp/internal/sim"
	"genmp/internal/sweep"
	"genmp/internal/xport"
)

// spSolver is the pentadiagonal solver with the real SP's per-point flop
// weights: the data path solves one scalar component; the time model
// charges for the benchmark's five solution components and auxiliary
// arithmetic.
type spSolver struct{ sweep.Banded }

func newSPSolver() spSolver { return spSolver{sweep.NewPenta()} }

func (spSolver) ForwardFlopsPerElement() float64  { return FlopsSolve * 0.7 }
func (spSolver) BackwardFlopsPerElement() float64 { return FlopsSolve * 0.3 }
func (s spSolver) FlopsPerElement() float64 {
	return s.ForwardFlopsPerElement() + s.BackwardFlopsPerElement()
}

// Phase labels stamped on the simulator's per-phase statistics (see
// sim.Rank.BeginPhase); the calibration audit of internal/exp keys its
// predicted-vs-measured comparison on these.
const (
	PhaseHalo   = "halo"
	PhaseRHS    = "rhs"
	PhaseAdd    = "add"
	PhaseReduce = "reduce"
)

// PhaseSolve returns the label of the line-sweep phase along dim
// (LHS build + forward/backward passes).
func PhaseSolve(dim int) string { return fmt.Sprintf("solve%d", dim) }

// CompilePlan compiles the SweepPlan of the SP application over env: the
// schedule its solve phases execute, the instance the cost model folds
// over (cost.PlanSweepTime) and obs dumps. Pass it to RunPlanned so
// prediction and measurement consume the very same plan.
func CompilePlan(env *dist.Env) (*plan.SweepPlan, error) {
	return plan.Compile(plan.Spec{M: env.M, Eta: env.Eta, Solver: newSPSolver()})
}

// CompilePlanOverlap is CompilePlan with the boundary-first overlap
// annotation (plan.Overlap): the identical schedule plus per-phase split
// points and interior-carry tags. RunPlanned (and every other consumer of
// the plan) switches on the annotation itself — overlap is a property of
// the compiled plan, not of any executor.
func CompilePlanOverlap(env *dist.Env, o plan.Overlap) (*plan.SweepPlan, error) {
	return plan.Compile(plan.Spec{M: env.M, Eta: env.Eta, Solver: newSPSolver(), Overlap: o})
}

// Run advances the SP pseudo-application for the given number of steps on a
// multipartitioned domain. In data mode u is advanced in place and matches
// SerialSolve; in model-only mode (u == nil) only virtual time and traffic
// are produced.
func Run(env *dist.Env, mach *sim.Machine, steps int, u *grid.Grid) (sim.Result, error) {
	return RunPlanned(env, mach, steps, u, nil)
}

// RunPlanned is Run executing a pre-compiled SweepPlan (from CompilePlan
// over the same env); pl == nil compiles one internally.
func RunPlanned(env *dist.Env, mach *sim.Machine, steps int, u *grid.Grid, pl *plan.SweepPlan) (sim.Result, error) {
	modelOnly := u == nil
	var vecs []*grid.Grid // l1, l2, diag, u1, u2, rhs
	var rhs *grid.Grid
	if !modelOnly {
		vecs = make([]*grid.Grid, 6)
		for i := range vecs {
			vecs[i] = grid.New(env.Eta...)
		}
		rhs = vecs[5]
	}
	ms, err := dist.NewMultiSweep(env, newSPSolver(), vecs)
	if err != nil {
		return sim.Result{}, err
	}
	ms.Plan = pl
	d := len(env.Eta)
	// The dissipation stencil reaches ±2, needing depth-2 halos of u;
	// partial replication of computation into the shadow region (a dHPF
	// optimization) recomputes the nearest shell locally and halves the
	// exchanged depth. The replicated flops are charged in ComputeOnTiles.
	haloDepth := 2 - env.Overhead.ReplicationDepth
	if haloDepth < 1 {
		haloDepth = 1
	}
	// Under the overlap schedule each step preposts the next step's halo
	// receives before the add phase (cross-timestep halo pipelining,
	// DESIGN.md §14) — timing-neutral in virtual time, but the discipline a
	// real MPI runtime needs to overlap the step tail with halo traffic.
	pipeline := pl != nil && pl.Overlap.Enabled
	return mach.Run(func(r *sim.Rank) {
		var haloPre []xport.Request
		for step := 0; step < steps; step++ {
			r.BeginPhase(PhaseHalo)
			env.ExchangeHalosPiped(r, haloDepth, 1, haloPre)
			haloPre = nil
			r.BeginPhase(PhaseRHS)
			env.ComputeOnTiles(r, FlopsRHS, tileOp(modelOnly, func(rect grid.Rect) {
				ComputeRHS(u, rhs, rect)
			}))
			for dim := 0; dim < d; dim++ {
				dim := dim
				r.BeginPhase(PhaseSolve(dim))
				env.ComputeOnTiles(r, FlopsLHSBuild, tileOp(modelOnly, func(rect grid.Rect) {
					BuildLHS(dim, rect, vecs[0], vecs[1], vecs[2], vecs[3], vecs[4])
				}))
				ms.Run(r, dim)
			}
			r.BeginPhase(PhaseAdd)
			if pipeline && step+1 < steps {
				haloPre = env.PostHaloRecvs(r, haloDepth, 1)
			}
			env.ComputeOnTiles(r, FlopsAdd, tileOp(modelOnly, func(rect grid.Rect) {
				Add(u, rhs, rect)
			}))
		}
		// Like the real benchmark's verification phase: a global residual
		// reduction at the end of the run.
		r.BeginPhase(PhaseReduce)
		local := 0.0
		if !modelOnly {
			env.EachOwnedTile(r.ID, func(lo, hi []int) {
				local += partialSumSquares(rhs, grid.RectOf(lo, hi))
			})
		}
		r.AllReduce([]float64{local}, func(a, b float64) float64 { return a + b })
	})
}

// partialSumSquares accumulates Σ v² over rect of g.
func partialSumSquares(g *grid.Grid, rect grid.Rect) float64 {
	d := g.Dims()
	data := g.Data()
	s := 0.0
	g.EachLine(rect, d-1, func(l grid.Line) {
		off := l.Base
		for k := 0; k < l.N; k++ {
			v := data[off]
			s += v * v
			off += l.Stride
		}
	})
	return s
}

func tileOp(modelOnly bool, f func(rect grid.Rect)) func(lo, hi []int) {
	if modelOnly {
		return nil
	}
	return func(lo, hi []int) { f(grid.RectOf(lo, hi)) }
}

// SerialTime returns the virtual time of the original sequential program
// for the given extents and steps on the machine's CPU: the baseline for
// Table 1 speedups.
func SerialTime(mach *sim.Machine, eta []int, steps int) (float64, error) {
	m, err := core.NewGeneralized(1, ones(len(eta)))
	if err != nil {
		return 0, err
	}
	env, err := dist.NewEnv(m, eta, dist.Original())
	if err != nil {
		return 0, err
	}
	cpu := mach.CPU
	cpu.WorkingSetBytes = WorkingSetBytes(eta, 1)
	serialMach := sim.NewMachine(1, mach.Net, cpu)
	res, err := Run(env, serialMach, steps, nil)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

func ones(d int) []int {
	g := make([]int, d)
	for i := range g {
		g[i] = 1
	}
	return g
}

// Variant identifies the two code versions compared in Table 1.
type Variant int

const (
	// HandCodedDiagonal is the NASA hand-written MPI code: diagonal
	// multipartitioning, runnable only on perfect squares.
	HandCodedDiagonal Variant = iota
	// DHPFGeneralized is the dHPF-compiled code: generalized
	// multipartitioning, any processor count.
	DHPFGeneralized
)

// Speedup runs the SP model for one (variant, p) cell of Table 1 and
// returns the speedup relative to serialTime. For HandCodedDiagonal on a
// non-square p it returns an error (the hand-coded version cannot run
// there, matching the blank cells of the table).
func Speedup(variant Variant, p int, mach *sim.Machine, eta []int, steps int, serialTime float64) (float64, error) {
	var m *core.Multipartitioning
	var ov dist.OverheadModel
	var err error
	switch variant {
	case HandCodedDiagonal:
		m, err = core.NewDiagonal(p, len(eta))
		ov = dist.HandCoded()
	case DHPFGeneralized:
		obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
		var res partition.Result
		res, err = partition.OptimalCapped(p, len(eta), obj, eta)
		if err == nil {
			m, err = core.NewGeneralized(p, res.Gamma)
		}
		ov = dist.DHPF()
	default:
		return 0, fmt.Errorf("nas: unknown variant %d", variant)
	}
	if err != nil {
		return 0, err
	}
	env, err := dist.NewEnv(m, eta, ov)
	if err != nil {
		return 0, err
	}
	cpu := mach.CPU
	cpu.WorkingSetBytes = WorkingSetBytes(eta, p)
	pm := sim.NewMachine(p, mach.Net, cpu)
	pm.Coll = mach.Coll
	if mach.Fabric != nil {
		// Rebuild rather than share: fabrics carry per-p state (hop-count
		// means, contention occupancy) and must not span machines.
		fab, err := sim.NewFabric(mach.Fabric.Name(), mach.Net, p)
		if err != nil {
			return 0, err
		}
		pm.Fabric = fab
	}
	res, err := Run(env, pm, steps, nil)
	if err != nil {
		return 0, err
	}
	return serialTime / res.Makespan, nil
}

// spGridCount is the number of resident full-size arrays in the SP state
// (u, rhs and the five pentadiagonal bands).
const spGridCount = 7

// WorkingSetBytes returns the per-rank resident data volume of the SP
// state for the cache model.
func WorkingSetBytes(eta []int, p int) float64 {
	n := 1
	for _, e := range eta {
		n *= e
	}
	return float64(n*8*spGridCount) / float64(p)
}

// Origin2000Machine returns the virtual machine calibrated for the Table 1
// reproduction: 250 MHz R10000-class CPUs (~180 Mflop/s sustained on SP)
// and an Origin-class interconnect.
func Origin2000Machine(p int) *sim.Machine {
	return sim.NewMachine(p,
		sim.Network{
			Latency:      12e-6,
			Bandwidth:    140e6,
			SendOverhead: 4e-6,
			RecvOverhead: 4e-6,
		},
		sim.CPU{FlopsPerSec: 180e6, CacheBoost: 1.25, L2Bytes: 4 << 20})
}

// Origin2000MachineOn returns the Table 1 machine with its interconnect
// replaced by the named topology ("" or "default" keeps the crossbar-like
// Origin model; see sim.FabricNames).
func Origin2000MachineOn(topology string, p int) (*sim.Machine, error) {
	mach := Origin2000Machine(p)
	fab, err := sim.NewFabric(topology, mach.Net, p)
	if err != nil {
		return nil, err
	}
	mach.Fabric = fab
	return mach, nil
}

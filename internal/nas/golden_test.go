package nas

import (
	"math"
	"testing"
)

// Golden regression checks: the serial solvers are the correctness anchors
// for every distributed run, so pin their output. Any intentional change to
// the synthetic physics must update these values (and re-validates all the
// distributed-vs-serial tests automatically).

func TestGoldenSPClassS(t *testing.T) {
	u := InitialState(ClassS.Eta)
	SerialSolve(u, ClassS.Steps)
	const want = 9.271679978744601e+01
	if got := u.Norm2(); math.Abs(got-want) > 1e-9 {
		t.Errorf("SP class S checksum after %d steps = %.15e, want %.15e", ClassS.Steps, got, want)
	}
}

func TestGoldenBT(t *testing.T) {
	v := InitialState([]int{10, 10, 10})
	BTSerialSolve(v, 3)
	const want = 7.113615184981960e+01
	if got := v.Norm2(); math.Abs(got-want) > 1e-9 {
		t.Errorf("BT 10³ checksum after 3 steps = %.15e, want %.15e", got, want)
	}
}

package nas

import (
	"math"
	"testing"

	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/grid"
)

func TestBTSerialStable(t *testing.T) {
	u := InitialState([]int{10, 10, 10})
	before := u.Norm2()
	BTSerialSolve(u, 4)
	after := u.Norm2()
	if math.IsNaN(after) || math.IsInf(after, 0) {
		t.Fatalf("BT solution blew up: %g", after)
	}
	if after > before*10 || after < before/10 {
		t.Errorf("BT norm drifted wildly: %g → %g", before, after)
	}
}

func TestBTDistributedMatchesSerial(t *testing.T) {
	cases := []struct {
		p     int
		gamma []int
		eta   []int
	}{
		{4, []int{2, 2, 2}, []int{10, 10, 10}},
		{8, []int{4, 4, 2}, []int{12, 12, 12}},
	}
	for _, c := range cases {
		steps := 2
		want := InitialState(c.eta)
		BTSerialSolve(want, steps)

		m, err := core.NewGeneralized(c.p, c.gamma)
		if err != nil {
			t.Fatal(err)
		}
		env, err := dist.NewEnv(m, c.eta, dist.DHPF())
		if err != nil {
			t.Fatal(err)
		}
		u := InitialState(c.eta)
		res, err := BTRun(env, Origin2000Machine(c.p), steps, u)
		if err != nil {
			t.Fatalf("p=%d: %v", c.p, err)
		}
		if d := grid.MaxAbsDiff(want, u); d > 1e-8 {
			t.Errorf("p=%d γ=%v: distributed BT differs from serial by %g", c.p, c.gamma, d)
		}
		if res.Makespan <= 0 {
			t.Error("zero makespan")
		}
	}
}

func TestBTCarriesAreBlockSized(t *testing.T) {
	// BT's aggregated carry messages are (B² + B)·lines·8 bytes on the
	// forward pass — much fatter than SP's; verify the traffic reflects
	// that (same partitioning, same domain, more bytes than SP).
	p := 4
	m, err := core.NewGeneralized(p, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	env, err := dist.NewEnv(m, []int{16, 16, 16}, dist.HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	resBT, err := BTRun(env, Origin2000Machine(p), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	resSP, err := Run(env, Origin2000Machine(p), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resBT.TotalBytes() <= resSP.TotalBytes() {
		t.Errorf("BT bytes (%d) should exceed SP bytes (%d)", resBT.TotalBytes(), resSP.TotalBytes())
	}
}

func TestBTSpeedupScales(t *testing.T) {
	eta := []int{36, 36, 36}
	steps := 1
	serialEnvTime := func() float64 {
		m, err := core.NewGeneralized(1, []int{1, 1, 1})
		if err != nil {
			t.Fatal(err)
		}
		env, err := dist.NewEnv(m, eta, dist.Original())
		if err != nil {
			t.Fatal(err)
		}
		res, err := BTRun(env, Origin2000Machine(1), steps, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	serial := serialEnvTime()
	prev := 0.0
	for _, p := range []int{1, 4, 9, 16} {
		m, err := core.NewDiagonal(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		env, err := dist.NewEnv(m, eta, dist.HandCoded())
		if err != nil {
			t.Fatal(err)
		}
		res, err := BTRun(env, Origin2000Machine(p), steps, nil)
		if err != nil {
			t.Fatal(err)
		}
		s := serial / res.Makespan
		if s <= prev {
			t.Errorf("BT speedup at p=%d (%g) not above previous (%g)", p, s, prev)
		}
		prev = s
	}
}

func TestBuildBlockLHSDominance(t *testing.T) {
	eta := []int{8, 6, 5}
	vecs := make([]*grid.Grid, btVecs())
	for i := range vecs {
		vecs[i] = grid.New(eta...)
	}
	BuildBlockLHS(0, vecs[0].Bounds(), vecs)
	const b = BTBlockSize
	bb := b * b
	// A blocks zero at the line start, C at the line end.
	for e := 0; e < bb; e++ {
		if vecs[e].At(0, 2, 2) != 0 {
			t.Fatalf("A block entry %d nonzero at line start", e)
		}
		if vecs[2*bb+e].At(7, 2, 2) != 0 {
			t.Fatalf("C block entry %d nonzero at line end", e)
		}
	}
	// Diagonal dominance of the B block rows.
	for r := 0; r < b; r++ {
		idx := []int{3, 1, 4}
		sum := 0.0
		for c := 0; c < b; c++ {
			sum += math.Abs(vecs[r*b+c].At(idx...)) + math.Abs(vecs[2*bb+r*b+c].At(idx...))
			if c != r {
				sum += math.Abs(vecs[bb+r*b+c].At(idx...))
			}
		}
		if vecs[bb+r*b+r].At(idx...) <= sum {
			t.Fatalf("row %d not dominant: diag %g vs off-sum %g", r, vecs[bb+r*b+r].At(idx...), sum)
		}
	}
}

// Package nas implements a structurally faithful reproduction of the NAS SP
// (Scalar Pentadiagonal) computational fluid dynamics benchmark — the
// application the paper uses to evaluate generalized multipartitioning
// (Table 1). Each timestep performs:
//
//  1. compute_rhs: an axis-aligned stencil (second difference plus
//     fourth-order dissipation, reach ±2) over the state u, producing rhs;
//  2. x_solve, y_solve, z_solve: scalar pentadiagonal line solves along
//     each dimension, in place on rhs — the line sweeps at the heart of the
//     ADI-style approximate factorization;
//  3. add: u += rhs.
//
// The physics is a synthetic diffusion-like operator with exactly the
// data-access pattern, dependence structure and communication requirements
// of the real SP (see DESIGN.md for the substitution rationale); the
// modeled flop weights per point are taken from the real benchmark's
// operation counts so computation/communication ratios are realistic.
package nas

import (
	"genmp/internal/grid"
	"genmp/internal/sweep"
)

// Class is a NAS problem class.
type Class struct {
	Name  string
	Eta   []int
	Steps int // timesteps used in this reproduction's runs (scaled down)
}

// The standard SP classes (iteration counts reduced: speedup is a steady-
// state per-iteration property, and the virtual-time simulation is exact
// per iteration).
var (
	ClassS = Class{Name: "S", Eta: []int{12, 12, 12}, Steps: 4}
	ClassW = Class{Name: "W", Eta: []int{36, 36, 36}, Steps: 4}
	ClassA = Class{Name: "A", Eta: []int{64, 64, 64}, Steps: 4}
	ClassB = Class{Name: "B", Eta: []int{102, 102, 102}, Steps: 4}
)

// Modeled flop weights per grid point, patterned on the real SP operation
// mix (~880 flops per point per iteration in total).
const (
	FlopsRHS      = 334.0 // compute_rhs
	FlopsSolve    = 160.0 // each of x/y/z_solve (5 components × penta solve + lhs build)
	FlopsAdd      = 10.0  // add
	FlopsLHSBuild = 20.0  // building the pentadiagonal coefficients
)

// Stencil coefficients: 2nd-difference smoothing and 4th-order dissipation.
// Exported so the strict distributed-memory path (internal/dmem) evaluates
// the identical formula.
const (
	Nu2  = 0.05 // second-difference weight
	Eps4 = 0.01 // fourth-difference dissipation weight
)

// StencilTerm is one dimension's contribution to the RHS stencil given the
// five line values around the point.
func StencilTerm(um2, um1, u0, up1, up2 float64) float64 {
	return Nu2*(um1-2*u0+up1) - Eps4*(um2-4*um1+6*u0-4*up1+up2)
}

// Pentadiagonal solve coefficients (diagonally dominant).
const (
	pd1 = 0.05   // first off-diagonal magnitude
	pd2 = 0.0125 // second off-diagonal magnitude
)

// clampIdx clamps k into [0, n).
func clampIdx(k, n int) int {
	if k < 0 {
		return 0
	}
	if k >= n {
		return n - 1
	}
	return k
}

// ComputeRHS evaluates the stencil over region rect of u into rhs:
//
//	rhs = Σ_dims [ ν₂·δ²u − ε₄·δ⁴u ]
//
// with index clamping at the physical domain boundaries (reach ±2, so a
// distributed caller needs depth-2 halos).
func ComputeRHS(u, rhs *grid.Grid, rect grid.Rect) {
	shape := u.Shape()
	d := len(shape)
	ud := u.Data()
	rd := rhs.Data()
	idx := make([]int, d)
	// Walk the region line by line along the last dimension for locality.
	last := d - 1
	u.EachLine(rect, last, func(l grid.Line) {
		// Recover the orthogonal coordinates of this line.
		off := l.Base
		rem := off
		for i := 0; i < d; i++ {
			stride := 1
			for j := i + 1; j < d; j++ {
				stride *= shape[j]
			}
			idx[i] = rem / stride
			rem = rem % stride
		}
		for k := 0; k < l.N; k++ {
			acc := 0.0
			for dim := 0; dim < d; dim++ {
				stride := 1
				for j := dim + 1; j < d; j++ {
					stride *= shape[j]
				}
				c := idx[dim]
				n := shape[dim]
				at := func(delta int) float64 {
					cc := clampIdx(c+delta, n)
					return ud[off+(cc-c)*stride]
				}
				acc += StencilTerm(at(-2), at(-1), at(0), at(1), at(2))
			}
			rd[off] = acc
			off += l.Stride
			idx[last]++
		}
		idx[last] -= l.N
	})
}

// coeffScale is a cheap deterministic per-row variation so the
// pentadiagonal systems are not constant-coefficient (the real SP builds
// its lhs from the current state).
func coeffScale(globalIdx int) float64 {
	return 1 + float64((globalIdx*7)%13)/100
}

// BandRow returns the pentadiagonal coefficients at global row g (0-based)
// of a solve along dim over a line of length n: the two sub-diagonals
// (nearest first), the diagonal, and the two super-diagonals, with
// couplings that would reach outside the line zeroed. Exported so every
// execution mode assembles identical systems.
func BandRow(g, dim, n int) (l1, l2, d, u1, u2 float64) {
	s := coeffScale(g + dim)
	if g >= 1 {
		l1 = -pd1 * s
	}
	if g >= 2 {
		l2 = -pd2 * s
	}
	if g < n-1 {
		u1 = -pd1 * s
	}
	if g < n-2 {
		u2 = -pd2 * s
	}
	d = 1 + 2*pd1 + 2*pd2
	return
}

// BuildLHS writes the pentadiagonal coefficients for a solve along dim into
// the five band grids over region rect, zeroing couplings that would reach
// outside the domain. Band layout matches sweep.Banded{KL: 2, KU: 2}:
// vecs[0] multiplies x[k−1], vecs[1] x[k−2], vecs[2] is the diagonal,
// vecs[3] x[k+1], vecs[4] x[k+2].
func BuildLHS(dim int, rect grid.Rect, l1, l2, dg, u1, u2 *grid.Grid) {
	n := dg.Shape()[dim]
	l1d, l2d, dgd, u1d, u2d := l1.Data(), l2.Data(), dg.Data(), u1.Data(), u2.Data()
	start := rect.Lo[dim]
	dg.EachLine(rect, dim, func(l grid.Line) {
		off := l.Base
		for k := 0; k < l.N; k++ {
			l1d[off], l2d[off], dgd[off], u1d[off], u2d[off] = BandRow(start+k, dim, n)
			off += l.Stride
		}
	})
}

// Add performs u += rhs over rect.
func Add(u, rhs *grid.Grid, rect grid.Rect) {
	ud := u.Data()
	rd := rhs.Data()
	d := u.Dims()
	u.EachLine(rect, d-1, func(l grid.Line) {
		off := l.Base
		for k := 0; k < l.N; k++ {
			ud[off] += rd[off]
			off += l.Stride
		}
	})
}

// InitialState returns the deterministic initial u for the given extents.
func InitialState(eta []int) *grid.Grid {
	u := grid.New(eta...)
	u.FillFunc(func(idx []int) float64 {
		v := 1.0
		for i, x := range idx {
			v += float64((x+1)*(i+2)) / float64(eta[i]*(i+3))
		}
		return v
	})
	return u
}

// SerialSolve advances u in place by steps timesteps — the reference
// implementation (whole-line solves, no partitioning).
func SerialSolve(u *grid.Grid, steps int) {
	eta := u.Shape()
	rhs := grid.New(eta...)
	l1 := grid.New(eta...)
	l2 := grid.New(eta...)
	dg := grid.New(eta...)
	u1 := grid.New(eta...)
	u2 := grid.New(eta...)
	all := u.Bounds()
	solver := sweep.NewPenta()
	vecs := []*grid.Grid{l1, l2, dg, u1, u2, rhs}
	for s := 0; s < steps; s++ {
		ComputeRHS(u, rhs, all)
		for dim := range eta {
			BuildLHS(dim, all, l1, l2, dg, u1, u2)
			solveAllLines(solver, vecs, all, dim)
		}
		Add(u, rhs, all)
	}
}

func solveAllLines(solver sweep.Solver, vecs []*grid.Grid, rect grid.Rect, dim int) {
	n := vecs[0].Shape()[dim]
	chunk := make([][]float64, len(vecs))
	for v := range chunk {
		chunk[v] = make([]float64, n)
	}
	vecs[0].EachLine(rect, dim, func(l grid.Line) {
		for v, g := range vecs {
			g.Gather(l, chunk[v])
		}
		sweep.ChunkedSolve(solver, chunk, nil)
		for v, g := range vecs {
			g.Scatter(l, chunk[v])
		}
	})
}

package nas

import (
	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/plan"
	"genmp/internal/sim"
	"genmp/internal/sweep"
	"genmp/internal/xport"
)

// BT-style benchmark: the NAS BT (Block Tridiagonal) pseudo-application is
// the other line-sweep CFD code the multipartitioning literature targets
// (Naik et al. parallelized exactly this ADI class). Its timestep has the
// same shape as SP — compute_rhs, x/y/z line solves, add — but each line
// solve is a *block* tridiagonal system with dense 5×5 blocks coupling the
// five flow variables. This file provides the structurally faithful
// reproduction: the same synthetic stencil physics as SP driving block
// tridiagonal solves with sweep.BlockTridiag, solving a 5-component state.
//
// Everything the paper says about multipartitioned sweeps applies verbatim:
// only the per-line carries are bigger (a 5×5 block plus a 5-vector per
// line instead of a handful of scalars), which makes BT a good stress of
// the aggregated-communication path.

// BTBlockSize is the block order of the BT solves (five flow variables).
const BTBlockSize = 5

// Modeled per-point flop weights for BT (the real benchmark runs ≈ 2.5×
// the flops of SP per point; the solver's own weights are computed from
// the block algebra and dominate).
const (
	BTFlopsRHS = 650.0
	BTFlopsAdd = 25.0
	// BTFlopsLHSBuild covers assembling three 5×5 blocks per point.
	BTFlopsLHSBuild = 150.0
)

// btVecs returns the number of per-point arrays of the BT solve:
// 3 blocks of B² entries plus the B-component right-hand side.
func btVecs() int { return 3*BTBlockSize*BTBlockSize + BTBlockSize }

// BTCoeff is the deterministic block-coefficient generator, indexed so the
// systems are non-constant yet reproducible by every execution mode:
// g is the global row, (r, c) the block entry, and which selects the A (0),
// C (1) or off-diagonal-B (2) block.
func BTCoeff(g, r, c, which int) float64 {
	h := (g*31 + r*17 + c*7 + which*13) % 19
	return (float64(h) - 9) / 40 // in [−0.225, 0.225]
}

// btCoeff is the internal alias.
func btCoeff(g, r, c, which int) float64 { return BTCoeff(g, r, c, which) }

// BuildBlockLHS fills the 3·B² block-coefficient grids for a solve along
// dim over region rect: A blocks (coupling to k−1), B blocks (diagonal,
// made block-diagonally dominant), C blocks (coupling to k+1), with A
// zeroed at the line start and C at the line end.
func BuildBlockLHS(dim int, rect grid.Rect, vecs []*grid.Grid) {
	const b = BTBlockSize
	bb := b * b
	n := vecs[0].Shape()[dim]
	start := rect.Lo[dim]
	data := make([][]float64, 3*bb)
	for i := range data {
		data[i] = vecs[i].Data()
	}
	vecs[0].EachLine(rect, dim, func(l grid.Line) {
		off := l.Base
		for k := 0; k < l.N; k++ {
			g := start + k
			for r := 0; r < b; r++ {
				rowSum := 0.0
				for c := 0; c < b; c++ {
					av, cv := 0.0, 0.0
					if g >= 1 {
						av = btCoeff(g+dim, r, c, 0)
					}
					if g < n-1 {
						cv = btCoeff(g+dim, r, c, 1)
					}
					data[r*b+c][off] = av
					data[2*bb+r*b+c][off] = cv
					rowSum += abs64(av) + abs64(cv)
					if c != r {
						bv := btCoeff(g+dim, r, c, 2)
						data[bb+r*b+c][off] = bv
						rowSum += abs64(bv)
					}
				}
				data[bb+r*b+r][off] = rowSum + 1.5
			}
			off += l.Stride
		}
	})
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// btSolver wraps the 5×5 block solver; its flop weights follow from the
// block algebra directly, so no inflation is needed (unlike spSolver).
func btSolver() sweep.BlockTridiag { return sweep.NewBlockTridiag(BTBlockSize) }

// btScatterRHS copies the scalar stencil output into the B right-hand-side
// component grids with per-component scaling, over rect.
func btScatterRHS(rhs *grid.Grid, fvecs []*grid.Grid, rect grid.Rect) {
	rd := rhs.Data()
	d := rhs.Dims()
	comps := make([][]float64, len(fvecs))
	for i := range fvecs {
		comps[i] = fvecs[i].Data()
	}
	rhs.EachLine(rect, d-1, func(l grid.Line) {
		off := l.Base
		for k := 0; k < l.N; k++ {
			v := rd[off]
			for c := range comps {
				comps[c][off] = v * (1 + 0.1*float64(c))
			}
			off += l.Stride
		}
	})
}

// btAdd folds the first solution component back into u over rect.
func btAdd(u, f0 *grid.Grid, rect grid.Rect) { Add(u, f0, rect) }

// BTSerialSolve advances u in place by steps BT timesteps — the reference
// implementation.
func BTSerialSolve(u *grid.Grid, steps int) {
	eta := u.Shape()
	rhs := grid.New(eta...)
	vecs := make([]*grid.Grid, btVecs())
	for i := range vecs {
		vecs[i] = grid.New(eta...)
	}
	const bb = BTBlockSize * BTBlockSize
	fvecs := vecs[3*bb:]
	all := u.Bounds()
	solver := btSolver()
	for s := 0; s < steps; s++ {
		ComputeRHS(u, rhs, all)
		btScatterRHS(rhs, fvecs, all)
		for dim := range eta {
			BuildBlockLHS(dim, all, vecs)
			solveAllLines(solver, vecs, all, dim)
		}
		btAdd(u, fvecs[0], all)
	}
}

// CompileBTPlan compiles the BT application's SweepPlan over env, with the
// overlap annotation when o is enabled (the zero Overlap yields the strict
// schedule). Pass it to BTRunPlanned.
func CompileBTPlan(env *dist.Env, o plan.Overlap) (*plan.SweepPlan, error) {
	return plan.Compile(plan.Spec{M: env.M, Eta: env.Eta, Solver: btSolver(), Overlap: o})
}

// BTRun advances the BT pseudo-application on a multipartitioned domain; u
// nil selects model-only mode. In data mode the final u matches
// BTSerialSolve.
func BTRun(env *dist.Env, mach *sim.Machine, steps int, u *grid.Grid) (sim.Result, error) {
	return BTRunPlanned(env, mach, steps, u, nil)
}

// BTRunPlanned is BTRun executing a pre-compiled SweepPlan (from
// CompileBTPlan over the same env); pl == nil compiles one internally. An
// overlap-annotated plan selects the boundary-first schedule and
// cross-timestep halo pipelining, exactly as in RunPlanned.
func BTRunPlanned(env *dist.Env, mach *sim.Machine, steps int, u *grid.Grid, pl *plan.SweepPlan) (sim.Result, error) {
	modelOnly := u == nil
	var vecs []*grid.Grid
	var rhs *grid.Grid
	var fvecs []*grid.Grid
	if !modelOnly {
		vecs = make([]*grid.Grid, btVecs())
		for i := range vecs {
			vecs[i] = grid.New(env.Eta...)
		}
		rhs = grid.New(env.Eta...)
		fvecs = vecs[3*BTBlockSize*BTBlockSize:]
	}
	ms, err := dist.NewMultiSweep(env, btSolver(), vecs)
	if err != nil {
		return sim.Result{}, err
	}
	ms.Plan = pl
	d := len(env.Eta)
	haloDepth := 2 - env.Overhead.ReplicationDepth
	if haloDepth < 1 {
		haloDepth = 1
	}
	pipeline := pl != nil && pl.Overlap.Enabled
	return mach.Run(func(r *sim.Rank) {
		var haloPre []xport.Request
		for step := 0; step < steps; step++ {
			r.BeginPhase(PhaseHalo)
			env.ExchangeHalosPiped(r, haloDepth, 1, haloPre)
			haloPre = nil
			r.BeginPhase(PhaseRHS)
			env.ComputeOnTiles(r, BTFlopsRHS, tileOp(modelOnly, func(rect grid.Rect) {
				ComputeRHS(u, rhs, rect)
				btScatterRHS(rhs, fvecs, rect)
			}))
			for dim := 0; dim < d; dim++ {
				dim := dim
				r.BeginPhase(PhaseSolve(dim))
				env.ComputeOnTiles(r, BTFlopsLHSBuild, tileOp(modelOnly, func(rect grid.Rect) {
					BuildBlockLHS(dim, rect, vecs)
				}))
				ms.Run(r, dim)
			}
			r.BeginPhase(PhaseAdd)
			if pipeline && step+1 < steps {
				haloPre = env.PostHaloRecvs(r, haloDepth, 1)
			}
			env.ComputeOnTiles(r, BTFlopsAdd, tileOp(modelOnly, func(rect grid.Rect) {
				btAdd(u, fvecs[0], rect)
			}))
		}
	})
}

package nas

import (
	"math"
	"testing"

	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/grid"
)

func TestSerialSolveStable(t *testing.T) {
	u := InitialState([]int{10, 10, 10})
	before := u.Norm2()
	SerialSolve(u, 5)
	after := u.Norm2()
	if math.IsNaN(after) || math.IsInf(after, 0) {
		t.Fatalf("solution blew up: %g", after)
	}
	if after > before*10 || after < before/10 {
		t.Errorf("solution norm drifted wildly: %g → %g", before, after)
	}
}

func TestComputeRHSConstantFieldIsZero(t *testing.T) {
	// Both the second and fourth differences of a constant vanish (the
	// clamped boundary treatment preserves this).
	eta := []int{8, 7, 6}
	u := grid.New(eta...)
	u.Fill(3.5)
	rhs := grid.New(eta...)
	ComputeRHS(u, rhs, u.Bounds())
	if rhs.Norm2() > 1e-12 {
		t.Errorf("RHS of constant field = %g, want 0", rhs.Norm2())
	}
}

func TestComputeRHSRegionMatchesWhole(t *testing.T) {
	eta := []int{9, 8, 7}
	u := InitialState(eta)
	whole := grid.New(eta...)
	ComputeRHS(u, whole, u.Bounds())
	// Evaluating per sub-region must give the same values.
	pieces := grid.New(eta...)
	ComputeRHS(u, pieces, grid.RectOf([]int{0, 0, 0}, []int{4, 8, 7}))
	ComputeRHS(u, pieces, grid.RectOf([]int{4, 0, 0}, []int{9, 8, 3}))
	ComputeRHS(u, pieces, grid.RectOf([]int{4, 0, 3}, []int{9, 8, 7}))
	if d := grid.MaxAbsDiff(whole, pieces); d > 0 {
		t.Errorf("regional RHS differs from whole-domain by %g", d)
	}
}

func TestBuildLHSBoundaryZeroing(t *testing.T) {
	eta := []int{6, 5, 4}
	l1 := grid.New(eta...)
	l2 := grid.New(eta...)
	dg := grid.New(eta...)
	u1 := grid.New(eta...)
	u2 := grid.New(eta...)
	BuildLHS(0, dg.Bounds(), l1, l2, dg, u1, u2)
	if l1.At(0, 2, 2) != 0 || l2.At(0, 2, 2) != 0 || l2.At(1, 2, 2) != 0 {
		t.Error("lower couplings at the domain start must be zero")
	}
	if l1.At(1, 2, 2) == 0 {
		t.Error("l1 at row 1 should be nonzero")
	}
	if u1.At(5, 2, 2) != 0 || u2.At(5, 2, 2) != 0 || u2.At(4, 2, 2) != 0 {
		t.Error("upper couplings at the domain end must be zero")
	}
	if dg.At(3, 2, 2) <= 2*pd1+2*pd2 {
		t.Error("diagonal must dominate")
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	cases := []struct {
		p     int
		gamma []int
		eta   []int
	}{
		{4, []int{2, 2, 2}, []int{12, 12, 12}},
		{8, []int{4, 4, 2}, []int{12, 12, 12}},
		{9, []int{3, 3, 3}, []int{13, 11, 12}},
		{6, []int{6, 6, 1}, []int{12, 13, 7}},
	}
	for _, c := range cases {
		steps := 3
		want := InitialState(c.eta)
		SerialSolve(want, steps)

		m, err := core.NewGeneralized(c.p, c.gamma)
		if err != nil {
			t.Fatal(err)
		}
		env, err := dist.NewEnv(m, c.eta, dist.DHPF())
		if err != nil {
			t.Fatal(err)
		}
		u := InitialState(c.eta)
		res, err := Run(env, Origin2000Machine(c.p), steps, u)
		if err != nil {
			t.Fatalf("p=%d γ=%v: %v", c.p, c.gamma, err)
		}
		if d := grid.MaxAbsDiff(want, u); d > 1e-9 {
			t.Errorf("p=%d γ=%v: distributed SP differs from serial by %g", c.p, c.gamma, d)
		}
		if res.Makespan <= 0 {
			t.Error("zero makespan")
		}
	}
}

func TestSerialTimePositiveAndScalesWithDomain(t *testing.T) {
	mach := Origin2000Machine(1)
	tS, err := SerialTime(mach, ClassS.Eta, 2)
	if err != nil {
		t.Fatal(err)
	}
	tW, err := SerialTime(mach, ClassW.Eta, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tS <= 0 || tW <= tS {
		t.Errorf("serial times: S=%g W=%g", tS, tW)
	}
	// W is 27× the points of S; times should scale about linearly.
	if ratio := tW / tS; ratio < 20 || ratio > 35 {
		t.Errorf("W/S serial-time ratio = %g, want ≈ 27", ratio)
	}
}

func TestSpeedupHandCodedRequiresSquare(t *testing.T) {
	mach := Origin2000Machine(8)
	serial, err := SerialTime(mach, ClassS.Eta, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Speedup(HandCodedDiagonal, 8, mach, ClassS.Eta, 2, serial); err == nil {
		t.Error("hand-coded diagonal on p=8 should fail (not a perfect square)")
	}
	s, err := Speedup(HandCodedDiagonal, 9, mach, ClassS.Eta, 2, serial)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Errorf("speedup = %g", s)
	}
}

func TestSpeedupSerialOverheads(t *testing.T) {
	// At p = 1 both variants run the whole domain with their code-quality
	// factor: speedups near 0.95 (hand) and 0.91 (dHPF), as in Table 1.
	mach := Origin2000Machine(1)
	serial, err := SerialTime(mach, ClassS.Eta, 2)
	if err != nil {
		t.Fatal(err)
	}
	hand, err := Speedup(HandCodedDiagonal, 1, mach, ClassS.Eta, 2, serial)
	if err != nil {
		t.Fatal(err)
	}
	dhpf, err := Speedup(DHPFGeneralized, 1, mach, ClassS.Eta, 2, serial)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hand-0.95) > 0.02 {
		t.Errorf("hand-coded serial speedup = %g, want ≈ 0.95", hand)
	}
	if math.Abs(dhpf-0.91) > 0.02 {
		t.Errorf("dHPF serial speedup = %g, want ≈ 0.91", dhpf)
	}
}

func TestSpeedupScalesOnSquares(t *testing.T) {
	eta := ClassW.Eta // keep the test quick; shape holds across classes
	steps := 2
	mach := Origin2000Machine(1)
	serial, err := SerialTime(mach, eta, steps)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, p := range []int{1, 4, 9, 16} {
		s, err := Speedup(DHPFGeneralized, p, Origin2000Machine(p), eta, steps, serial)
		if err != nil {
			t.Fatal(err)
		}
		if s <= prev {
			t.Errorf("speedup at p=%d (%g) not above p-previous (%g)", p, s, prev)
		}
		prev = s
	}
}

func TestPrimeProcessorCountsWork(t *testing.T) {
	// The paper: the *technique* is completely general — primes work, with
	// γ = (1, p, p) and more phases, so performance is lower than nearby
	// composite counts. Verify both halves of the claim on the model.
	eta := ClassW.Eta
	steps := 1
	mach := Origin2000Machine(1)
	serial, err := SerialTime(mach, eta, steps)
	if err != nil {
		t.Fatal(err)
	}
	s7, err := Speedup(DHPFGeneralized, 7, Origin2000Machine(7), eta, steps, serial)
	if err != nil {
		t.Fatalf("prime p=7 should run: %v", err)
	}
	s8, err := Speedup(DHPFGeneralized, 8, Origin2000Machine(8), eta, steps, serial)
	if err != nil {
		t.Fatal(err)
	}
	if s7 <= 0 {
		t.Fatalf("speedup at prime 7 = %g", s7)
	}
	// Per-processor efficiency at the prime is below the composite
	// neighbor's (many more phases: Σγ = 2·7+1 = 15 vs 10 for 2×4×4).
	if s7/7 >= s8/8 {
		t.Errorf("prime p=7 efficiency (%g) should trail p=8 (%g)", s7/7, s8/8)
	}
}

func TestFlopWeightsPositive(t *testing.T) {
	s := newSPSolver()
	if s.ForwardFlopsPerElement() <= 0 || s.BackwardFlopsPerElement() <= 0 {
		t.Error("solver flop weights must be positive")
	}
	if s.FlopsPerElement() != s.ForwardFlopsPerElement()+s.BackwardFlopsPerElement() {
		t.Error("FlopsPerElement must be the sum of the passes")
	}
}

func TestClasses(t *testing.T) {
	for _, c := range []Class{ClassS, ClassW, ClassA, ClassB} {
		if len(c.Eta) != 3 || c.Steps < 1 || c.Name == "" {
			t.Errorf("malformed class %+v", c)
		}
	}
	if ClassB.Eta[0] != 102 {
		t.Errorf("class B must be 102³ (the paper's problem size)")
	}
}

package xport

import "fmt"

// Alg selects a collective algorithm. The enum lives here (not in sim)
// because plan consumers carry it in their options structs, and those are
// transport-neutral; each backend maps the values onto its own
// implementations.
type Alg int

const (
	// AlgAuto picks the machine default, falling back to each primitive's
	// legacy algorithm — the one whose timing matches the pre-collective
	// hand-rolled loops bit for bit.
	AlgAuto Alg = iota
	// AlgPairwise exchanges directly with every peer (p−1 messages each).
	AlgPairwise
	// AlgRing forwards blocks around a ring in p−1 steps.
	AlgRing
	// AlgDoubling exchanges with hypercube partners in ⌈log₂ p⌉ rounds.
	AlgDoubling
	// AlgBruck is the log-round store-and-forward all-to-all; for tree
	// collectives it selects the binomial tree.
	AlgBruck
)

// String names the algorithm as accepted by ParseAlg.
func (a Alg) String() string {
	switch a {
	case AlgPairwise:
		return "pairwise"
	case AlgRing:
		return "ring"
	case AlgDoubling:
		return "doubling"
	case AlgBruck:
		return "bruck"
	default:
		return "auto"
	}
}

// ParseAlg parses a collective-algorithm name (the -coll flag values).
func ParseAlg(s string) (Alg, error) {
	switch s {
	case "", "auto":
		return AlgAuto, nil
	case "pairwise", "direct":
		return AlgPairwise, nil
	case "ring":
		return AlgRing, nil
	case "doubling", "rd":
		return AlgDoubling, nil
	case "bruck":
		return AlgBruck, nil
	}
	return AlgAuto, fmt.Errorf("sim: unknown collective algorithm %q (want auto, pairwise, ring, doubling or bruck)", s)
}

// CollOpts tunes one collective call.
type CollOpts struct {
	// Alg selects the algorithm; AlgAuto defers to the machine default and
	// then to the primitive's legacy default.
	Alg Alg
	// PerMessage is CPU time charged around each constituent message
	// (software packing overhead), matching the distribution layers'
	// historical Compute(PerMessage) bracketing. Zero charges nothing.
	PerMessage float64
}

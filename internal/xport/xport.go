// Package xport is the transport abstraction every plan consumer runs
// against — the subset of the messaging machine the executors actually use,
// carved out of internal/sim so a compiled plan.SweepPlan can execute on
// any backend that implements it. Two implementations exist: sim.Rank (the
// deterministic virtual-time machine, the repo's performance model) and
// rt.Rank (real OS goroutines with shared-memory mailboxes, measured in
// wall-clock time). The executors in dist, dmem and redist are written
// against Transport alone, so schedule and transport cannot drift: the same
// compiled schedule replays bit-identically on both.
//
// The package also hosts the transport-neutral vocabulary the interface
// needs: the message struct, the global tag registry, and the collective
// algorithm/options types. sim re-exports them under aliases, so historical
// sim.Msg / sim.ReserveTags / sim.AlgAuto spellings keep working.
package xport

import "genmp/internal/obs/metrics"

// Msg is a point-to-point message. Bytes is the modeled size (8·len(
// Payload) if left 0 with a payload); Payload optionally carries real data
// and is handed off zero-copy — ownership transfers to the receiver, which
// recycles it via PutPayload.
type Msg struct {
	Src, Tag int
	Bytes    int
	Payload  []float64
}

// Request is the handle of one outstanding nonblocking operation. Every
// request must be completed by exactly one Wait (or via WaitAll). Waited
// requests may be recycled by the transport — do not retain or reuse them
// after Wait.
type Request interface {
	// Wait completes the operation: for receives it blocks until the message
	// is matched and returns it; for sends it returns the zero Msg.
	Wait() Msg
	// IsSend reports whether the request belongs to a send.
	IsSend() bool
	// Peer returns the counterpart rank (destination for sends, source for
	// receives).
	Peer() int
	// Tag returns the request's message tag.
	Tag() int
}

// Transport is one rank's view of the messaging machine: point-to-point
// sends and receives (blocking and nonblocking), the collectives, payload
// pooling, and the cost-accounting hooks (Compute/ComputeFlops advance a
// virtual clock on the simulator and are free on a real backend, where time
// passes by itself). All methods are called from the rank's own goroutine.
type Transport interface {
	// Rank returns this rank's id in [0, P).
	Rank() int
	// P returns the machine's rank count.
	P() int

	// BeginPhase labels subsequent activity (profiling/tracing); it returns
	// the previous label so nested libraries can restore it.
	BeginPhase(label string) (prev string)
	// Compute accounts seconds of modeled computation (virtual-time
	// backends advance the clock; real backends do nothing — the work
	// itself took the time).
	Compute(seconds float64)
	// ComputeFlops accounts flops of modeled computation.
	ComputeFlops(flops float64)

	// Send posts a message to dst; sends are eager (buffered) and never
	// block against the receiver.
	Send(dst, tag int, m Msg)
	// Recv blocks until the next message from src with the given tag.
	Recv(src, tag int) Msg
	// SendRecv posts the send and then receives (safe in rings and shifts
	// because sends never block).
	SendRecv(dst, sendTag int, m Msg, src, recvTag int) Msg
	// Isend posts a nonblocking send; Irecv preposts a receive. Both return
	// a Request that must be Waited exactly once.
	Isend(dst, tag int, m Msg) Request
	Irecv(src, tag int) Request
	// WaitAll completes every non-nil request in order.
	WaitAll(reqs ...Request)

	// Barrier synchronizes all ranks.
	Barrier()
	// AllReduce combines each rank's values elementwise and returns the
	// combined vector to every rank.
	AllReduce(vals []float64, combine func(a, b float64) float64) []float64
	// AllToAll exchanges sizes[dst] bytes (and data[dst], when non-nil) with
	// every peer; out[src] holds the payload received from src.
	AllToAll(sizes []int, data [][]float64, o CollOpts) [][]float64
	// AllGather shares each rank's block with everyone.
	AllGather(size int, mine []float64, o CollOpts) [][]float64
	// GatherTo collects every rank's block at root (nil elsewhere).
	GatherTo(root, size int, mine []float64, o CollOpts) [][]float64
	// Bcast distributes root's block to every rank.
	Bcast(root, size int, data []float64, o CollOpts) []float64
	// Exchange pairs a send to dst with a receive from src under one tag,
	// bracketed by perMessage CPU overhead on each side.
	Exchange(dst, src, tag int, m Msg, perMessage float64) Msg

	// GetPayload returns a pooled buffer of n float64s; PutPayload recycles
	// one (steady-state messaging allocates nothing).
	GetPayload(n int) []float64
	PutPayload(buf []float64)

	// MetricsRegistry returns the live registry run activity mirrors into,
	// or nil when metrics are off.
	MetricsRegistry() *metrics.Registry
}

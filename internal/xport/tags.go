package xport

import (
	"fmt"
	"sort"
	"sync"
)

// TagSpace is a reserved, half-open range [Base, Base+Size) of message
// tags. Subsystems obtain one from ReserveTags at package init and mint
// tags through Tag, replacing the historical scattered `1<<27 | ...`
// literals whose disjointness nothing checked. The registry is transport-
// neutral: every backend matches messages by the same tag values, so a
// schedule compiled against one reservation runs anywhere.
type TagSpace struct {
	name string
	base int
	size int
}

// Name returns the owner name given at reservation.
func (t TagSpace) Name() string { return t.name }

// Base returns the first tag of the space.
func (t TagSpace) Base() int { return t.base }

// Size returns the number of tags in the space.
func (t TagSpace) Size() int { return t.size }

// Tag returns Base+off, panicking if off falls outside the reservation —
// an out-of-range offset would silently collide with a neighboring space.
func (t TagSpace) Tag(off int) int {
	if off < 0 || off >= t.size {
		panic(fmt.Sprintf("sim: tag offset %d outside space %q [%d,+%d)", off, t.name, t.base, t.size))
	}
	return t.base + off
}

// Contains reports whether tag falls inside the space.
func (t TagSpace) Contains(tag int) bool { return tag >= t.base && tag < t.base+t.size }

var (
	tagMu     sync.Mutex
	tagSpaces []TagSpace
)

// ReserveTags registers the half-open tag range [base, base+size) under the
// given owner name. It panics if the range is empty, negative, or overlaps
// any existing reservation: a collision would let two subsystems' messages
// match each other's receives, which no backend can detect at runtime.
func ReserveTags(name string, base, size int) TagSpace {
	if name == "" {
		panic("sim: ReserveTags needs a non-empty owner name")
	}
	if base < 0 || size < 1 {
		panic(fmt.Sprintf("sim: ReserveTags(%q, %d, %d): range must be non-negative and non-empty", name, base, size))
	}
	t := TagSpace{name: name, base: base, size: size}
	tagMu.Lock()
	defer tagMu.Unlock()
	for _, ex := range tagSpaces {
		if t.base < ex.base+ex.size && ex.base < t.base+t.size {
			panic(fmt.Sprintf("sim: tag space %q [%d,+%d) overlaps %q [%d,+%d)",
				name, base, size, ex.name, ex.base, ex.size))
		}
		if ex.name == name {
			panic(fmt.Sprintf("sim: tag space name %q already reserved", name))
		}
	}
	tagSpaces = append(tagSpaces, t)
	return t
}

// TagSpaces returns a snapshot of all reservations sorted by base — the
// registry's table of record for docs and tests.
func TagSpaces() []TagSpace {
	tagMu.Lock()
	defer tagMu.Unlock()
	out := make([]TagSpace, len(tagSpaces))
	copy(out, tagSpaces)
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out
}

// LookupTags returns the reservation registered under name, if any — the
// way a deserialized schedule (obs plan JSON) resolves its tag space back
// to the live registry.
func LookupTags(name string) (TagSpace, bool) {
	tagMu.Lock()
	defer tagMu.Unlock()
	for _, t := range tagSpaces {
		if t.name == name {
			return t, true
		}
	}
	return TagSpace{}, false
}

// Quickstart: compute a generalized multipartitioning for a processor
// count no diagonal multipartitioning supports, verify the paper's two
// properties, and inspect the sweep schedule a line-sweep executor would
// follow.
package main

import (
	"fmt"
	"log"
	"os"

	"genmp"
)

func main() {
	log.SetFlags(0)

	// 12 processors: not a perfect square, so classical 3-D diagonal
	// multipartitioning cannot handle it. The generalized algorithm can.
	const p = 12

	// 1. Search the optimal tile grid for a 3-D array under the uniform
	//    objective (minimize total computation phases).
	gamma, cost, err := genmp.OptimalPartitioning(p, 3, genmp.UniformObjective(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal tile grid for p=%d: %v (Σγ = %.0f)\n", p, gamma, cost)

	// 2. Build the tile→processor mapping (the paper's Figure 3
	//    construction) and verify the balance and neighbor properties.
	m, err := genmp.New(p, gamma)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Printf("mapping verified: %d tiles, %d per processor\n", m.NumTiles(), m.TilesPerProc())

	// 3. Every slab of every dimension holds the same number of tiles per
	//    processor — that is what keeps all p processors busy in every
	//    phase of a line sweep.
	for dim := 0; dim < 3; dim++ {
		fmt.Printf("  sweep along dim %d: %d phases, %d tile(s) per processor per phase\n",
			dim, gamma[dim], m.TilesPerSlab(dim))
	}

	// 4. The neighbor property: all of processor 0's +x neighbors live on
	//    one processor, so each phase sends a single aggregated message.
	fmt.Printf("processor 0 ships its +x carries to processor %d, −x to %d\n",
		m.NeighborProc(0, 0, +1), m.NeighborProc(0, 0, -1))

	// 5. The concrete schedule for processor 0 sweeping forward along x.
	fmt.Println("\nprocessor 0, forward sweep along dim 0:")
	for _, ph := range m.SweepSchedule(0, 0, false) {
		fmt.Printf("  slab %d: compute tiles %v", ph.Slab, ph.Tiles)
		if ph.SendTo >= 0 {
			fmt.Printf(", then send carries to proc %d", ph.SendTo)
		}
		fmt.Println()
	}

	// 6. Render the tile→processor table of the first k-slice.
	fmt.Println("\ntile ownership (per k-slice):")
	if err := m.RenderSlices(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// nassp runs the SP-style CFD kernel (class S) distributed over a
// generalized multipartitioning with real data, validates it against the
// serial reference, and then reproduces a slice of Table 1 in model-only
// mode.
package main

import (
	"fmt"
	"log"

	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/nas"
)

func main() {
	log.SetFlags(0)

	// --- correctness: class S with real data on 6 processors -----------
	class := nas.ClassS
	const p = 6
	m, err := core.NewGeneralized(p, []int{6, 6, 1})
	if err != nil {
		log.Fatal(err)
	}
	env, err := dist.NewEnv(m, class.Eta, dist.DHPF())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("NAS SP class %s (%v), %d steps, %s\n", class.Name, class.Eta, class.Steps, m.Name())

	want := nas.InitialState(class.Eta)
	nas.SerialSolve(want, class.Steps)

	u := nas.InitialState(class.Eta)
	res, err := nas.Run(env, nas.Origin2000Machine(p), class.Steps, u)
	if err != nil {
		log.Fatal(err)
	}
	diff := grid.MaxAbsDiff(want, u)
	fmt.Printf("max |distributed − serial| = %g", diff)
	if diff > 1e-9 {
		log.Fatal(" — VALIDATION FAILED")
	}
	fmt.Println("  ✓ validated")
	fmt.Printf("virtual makespan %.3f ms, %d messages, %d bytes\n\n",
		res.Makespan*1e3, res.TotalMessages(), res.TotalBytes())

	// --- performance: a slice of Table 1 on class B (model-only) -------
	eta := nas.ClassB.Eta
	steps := 1
	serial, err := nas.SerialTime(nas.Origin2000Machine(1), eta, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table 1 slice, class B (%v), speedups vs original sequential code:\n", eta)
	fmt.Printf("%8s  %12s  %12s\n", "# CPUs", "hand-coded", "dHPF")
	for _, pp := range []int{9, 16, 25, 36, 49, 50, 64} {
		mach := nas.Origin2000Machine(pp)
		hand := "    —   "
		if s, err := nas.Speedup(nas.HandCodedDiagonal, pp, mach, eta, steps, serial); err == nil {
			hand = fmt.Sprintf("%8.2f", s)
		}
		dhpf, err := nas.Speedup(nas.DHPFGeneralized, pp, mach, eta, steps, serial)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %12s  %12.2f\n", pp, hand, dhpf)
	}
	fmt.Println("\nNote the 49→50 inversion: 5×10×10 on 50 CPUs is slower than 7×7×7 on 49")
	fmt.Println("(the paper's Section 6 compact-partitioning observation).")
}

// skewed reproduces the Section 3.1 remark: on a 3-D domain whose third
// dimension is short, a 2-D partitioning of the long dimensions
// communicates less than the classical 3-D partitioning, with the
// crossover at aspect ratio 4.
package main

import (
	"fmt"
	"log"

	"genmp"
)

func main() {
	log.SetFlags(0)

	const p = 4
	base := 100
	fmt.Printf("optimal partitioning of a (r·%d)×(r·%d)×%d domain on p = %d\n", base, base, base, p)
	fmt.Printf("(volume objective: λᵢ = η/ηᵢ — communicated hyper-surface area)\n\n")
	fmt.Printf("%8s  %10s  %14s  %14s\n", "ratio r", "optimal γ", "cost(4×4×1)", "cost(2×2×2)")

	for _, ratio := range []int{1, 2, 3, 4, 5, 6, 8, 12} {
		eta := []int{ratio * base, ratio * base, base}
		obj := genmp.VolumeObjective(eta)
		gamma, _, err := genmp.OptimalPartitioning(p, 3, obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %10s  %14.4g  %14.4g\n",
			ratio, fmt.Sprintf("%d×%d×%d", gamma[0], gamma[1], gamma[2]),
			obj.Cost([]int{4, 4, 1}), obj.Cost([]int{2, 2, 2}))
	}

	fmt.Println("\nBelow ratio 4 the classical 2×2×2 wins; above it, 4×4×1: the extra")
	fmt.Println("communication sweeping the two long dimensions is offset by a fully")
	fmt.Println("local sweep along the short one. At exactly 4 the two tie — the")
	fmt.Println("paper's remark says η₁, η₂ ≥ 4·η₃ makes the 2-D partitioning preferable.")
}

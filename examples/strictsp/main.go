// strictsp runs the SP pseudo-application in strict distributed-memory
// mode: every rank works only on its private padded tile copies, stencil
// halos and sweep carries travel as real message payloads, and the final
// state is gathered to rank 0 over messages — then validated elementwise
// against the serial reference. This is the execution model of an MPI
// program, with nothing smuggled through shared memory.
package main

import (
	"fmt"
	"log"

	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/dmem"
	"genmp/internal/grid"
	"genmp/internal/nas"
)

func main() {
	log.SetFlags(0)

	const p = 12
	eta := []int{24, 24, 24}
	steps := 3
	m, err := core.NewGeneralized(p, []int{2, 6, 6})
	if err != nil {
		log.Fatal(err)
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strict distributed-memory SP: %s over %v, %d steps\n", m.Name(), eta, steps)

	want := nas.InitialState(eta)
	nas.SerialSolve(want, steps)

	got, res, err := dmem.RunSP(env, nas.Origin2000Machine(p), steps)
	if err != nil {
		log.Fatal(err)
	}
	diff := grid.MaxAbsDiff(want, got)
	fmt.Printf("gathered state vs serial reference: max diff = %g", diff)
	if diff > 1e-9 {
		log.Fatal(" — VALIDATION FAILED")
	}
	fmt.Println("  ✓")

	fmt.Printf("\ntraffic (all data really moved in payloads):\n")
	fmt.Printf("  messages   %8d\n", res.TotalMessages())
	fmt.Printf("  bytes      %8d  (halos + carries + gather)\n", res.TotalBytes())
	fmt.Printf("  makespan   %10.3f ms virtual\n", res.Makespan*1e3)
	s0 := res.Ranks[0]
	fmt.Printf("  rank 0: compute %.3f ms, comm %.3f ms, idle %.3f ms\n",
		s0.ComputeTime*1e3, s0.CommTime*1e3, s0.WaitTime*1e3)
}

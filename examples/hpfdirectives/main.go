// hpfdirectives demonstrates the Section 5 compiler-integration path: an
// HPF-annotated program fragment is parsed, its MULTI distribution planned
// into a generalized multipartitioning, and the resulting mapping driven
// through a distributed sweep — the pipeline the Rice dHPF compiler
// implements for real Fortran programs.
package main

import (
	"fmt"
	"log"

	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/hpf"
	"genmp/internal/nas"
	"genmp/internal/partition"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

const program = `
      program adi_sweeps
      real u(96, 96, 48), rhs(96, 96, 48)
!HPF$ PROCESSORS P(18)
!HPF$ TEMPLATE T(96, 96, 48)
!HPF$ DISTRIBUTE T(MULTI, MULTI, MULTI) ONTO P
!HPF$ ALIGN U WITH T
!HPF$ ALIGN RHS WITH T
!HPF$ SHADOW U(2, 2, 2)
      end
`

func main() {
	log.SetFlags(0)

	dirs, err := hpf.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed directives:")
	for _, ps := range dirs.Processors {
		fmt.Printf("  PROCESSORS %s%v  (total %d)\n", ps.Name, ps.Shape, ps.Size())
	}
	for _, tm := range dirs.Templates {
		fmt.Printf("  TEMPLATE   %s%v\n", tm.Name, tm.Eta)
	}
	for _, d := range dirs.Distributions {
		specs := make([]string, len(d.Specs))
		for i, s := range d.Specs {
			specs[i] = s.String()
		}
		fmt.Printf("  DISTRIBUTE %s(%v) ONTO %s\n", d.Template, specs, d.Procs)
	}

	// Plan with a machine-aware objective, resolving through the alignment
	// of array U.
	eta := dirs.Templates["T"].Eta
	obj := partition.MachineObjective(eta, 20e-6, 80e-9/18)
	plan, err := dirs.PlanTemplate("U", &obj)
	if err != nil {
		log.Fatal(err)
	}
	m := plan.Multi
	fmt.Printf("\nplanned distribution: %s (shadow widths %v)\n", m.Name(), plan.ShadowWidths)
	if err := m.Verify(); err != nil {
		log.Fatalf("planned mapping failed verification: %v", err)
	}
	fmt.Println("balance and neighbor properties verified")

	// Drive a real tridiagonal sweep through the planned mapping and check
	// it against the serial solve.
	env, err := dist.NewEnv(m, eta, dist.DHPF())
	if err != nil {
		log.Fatal(err)
	}
	gs := make([]*grid.Grid, 4)
	for i := range gs {
		gs[i] = grid.New(eta...)
	}
	gs[0].FillFunc(func(idx []int) float64 {
		if idx[0] == 0 {
			return 0
		}
		return -0.3
	})
	gs[1].Fill(2.0)
	gs[2].FillFunc(func(idx []int) float64 {
		if idx[0] == eta[0]-1 {
			return 0
		}
		return -0.3
	})
	gs[3].FillFunc(func(idx []int) float64 { return float64(idx[0]+idx[1]+idx[2]) / 100 })

	// Serial reference on clones.
	ref := make([][]float64, 4)
	n := eta[0]
	for v := range ref {
		ref[v] = make([]float64, n)
	}
	refGrids := make([]*grid.Grid, 4)
	for i, g := range gs {
		refGrids[i] = g.Clone()
	}
	refGrids[0].EachLine(refGrids[0].Bounds(), 0, func(l grid.Line) {
		for v, g := range refGrids {
			g.Gather(l, ref[v])
		}
		sweep.ChunkedSolve(sweep.Tridiag{}, ref, nil)
		for v, g := range refGrids {
			g.Scatter(l, ref[v])
		}
	})

	ms, err := dist.NewMultiSweep(env, sweep.Tridiag{}, gs)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nas.Origin2000Machine(18).Run(func(r *sim.Rank) { ms.Run(r, 0) })
	if err != nil {
		log.Fatal(err)
	}
	diff := grid.MaxAbsDiff(refGrids[3], gs[3])
	fmt.Printf("\ndistributed sweep along dim 0 on 18 ranks: max diff vs serial = %g", diff)
	if diff > 1e-9 {
		log.Fatal(" — FAILED")
	}
	fmt.Println("  ✓")
	fmt.Printf("virtual time %.3f ms, %d messages\n", res.Makespan*1e3, res.TotalMessages())
}

// adi3d runs a 3-D ADI heat-equation integration distributed over a
// generalized multipartitioning on the virtual-time machine, validates the
// result against the serial solver bit-for-bit, and reports the virtual
// execution profile.
package main

import (
	"fmt"
	"log"

	"genmp/internal/adi"
	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/nas"
	"genmp/internal/partition"
)

func main() {
	log.SetFlags(0)

	const p = 12
	eta := []int{48, 48, 48}
	pb := adi.Problem{Eta: eta, Alpha: 0.35, Steps: 4}

	// Choose the partitioning with the machine-aware objective and build
	// the multipartitioning.
	obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
	m, err := core.NewOptimal(p, 3, obj)
	if err != nil {
		log.Fatal(err)
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ADI on %v over %s, %d steps\n", eta, m.Name(), pb.Steps)

	// Serial reference.
	want := pb.InitialCondition()
	pb.SerialSolve(want)

	// Distributed run with real data.
	u := pb.InitialCondition()
	res, err := adi.Run(pb, u, adi.Config{
		Machine:  nas.Origin2000Machine(p),
		Strategy: adi.Multipartition,
		Env:      env,
	})
	if err != nil {
		log.Fatal(err)
	}

	diff := grid.MaxAbsDiff(want, u)
	fmt.Printf("max |distributed − serial| = %g", diff)
	if diff > 1e-9 {
		log.Fatalf(" — VALIDATION FAILED")
	}
	fmt.Println("  ✓ validated against the serial solver")

	fmt.Printf("\nvirtual execution profile (%d ranks):\n", p)
	fmt.Printf("  makespan        %10.3f ms\n", res.Makespan*1e3)
	fmt.Printf("  messages        %10d\n", res.TotalMessages())
	fmt.Printf("  bytes moved     %10d\n", res.TotalBytes())
	s0 := res.Ranks[0]
	fmt.Printf("  rank 0: compute %.3f ms, comm %.3f ms, idle %.3f ms\n",
		s0.ComputeTime*1e3, s0.CommTime*1e3, s0.WaitTime*1e3)

	// Contrast with the block-partitioned baselines (model-only).
	blk, err := dist.NewBlock(p, eta, 0, dist.HandCoded())
	if err != nil {
		log.Fatal(err)
	}
	wave, err := adi.Run(pb, nil, adi.Config{
		Machine: nas.Origin2000Machine(p), Strategy: adi.BlockWavefront, Block: blk, Grain: 64, ModelOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	trans, err := adi.Run(pb, nil, adi.Config{
		Machine: nas.Origin2000Machine(p), Strategy: adi.BlockTranspose, Block: blk, ModelOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstrategy comparison (virtual time):\n")
	fmt.Printf("  multipartitioning   %8.3f ms\n", res.Makespan*1e3)
	fmt.Printf("  block wavefront     %8.3f ms\n", wave.Makespan*1e3)
	fmt.Printf("  block transpose     %8.3f ms\n", trans.Makespan*1e3)
}

// explorer sweeps processor counts for a class-B-sized domain: for each p
// it shows the optimal generalized partitioning, tiles per processor,
// compactness, and the analytic efficiency — then runs the Section 6
// advisor to show when dropping back to fewer processors wins.
package main

import (
	"fmt"
	"log"

	"genmp"
	"genmp/internal/cost"
	"genmp/internal/numutil"
	"genmp/internal/partition"
)

func main() {
	log.SetFlags(0)

	eta := []int{102, 102, 102}
	model := genmp.NewOrigin2000Model()

	fmt.Printf("generalized multipartitionings of a %v domain (analytic model)\n\n", eta)
	fmt.Printf("%5s  %12s  %10s  %8s  %10s\n", "p", "optimal γ", "tiles/proc", "compact", "efficiency")
	for p := 1; p <= 64; p++ {
		res, err := model.BestPartitioning(p, eta)
		if err != nil {
			log.Fatal(err)
		}
		compact := ""
		if cost.IsCompact(p, res.Gamma) {
			compact = "yes"
		}
		eff := model.Speedup(p, eta, res.Gamma) / float64(p)
		fmt.Printf("%5d  %12s  %10d  %8s  %9.1f%%\n",
			p, partition.Describe(res.Gamma), partition.TilesPerProcessor(p, res.Gamma), compact, eff*100)
	}

	// The Section 6 advisor: given 50 processors, is it faster to use 49?
	fmt.Println("\nSection 6 advisor: best configuration given 50 available processors")
	adv, err := model.Advise(50, eta, func(p int, gamma []int) float64 {
		t := model.TotalTime(p, eta, gamma)
		if !cost.IsCompact(p, gamma) {
			// Non-compact partitionings pay tile-management and imbalance
			// overheads the analytic model does not see; the simulated SP
			// (cmd/spbench) measures them directly.
			t *= 1.2
		}
		return t
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  diagonal fallback: p = %d (⌊50^(1/2)⌋² = 49)\n", adv.DiagonalProcs)
	fmt.Printf("  advice: run on p = %d with γ = %v (modeled time %.3g s)\n",
		adv.UseProcs, adv.Gamma, adv.Time)
	if numutil.EqualInts(adv.Gamma, []int{7, 7, 7}) {
		fmt.Println("  → matches the paper: 7×7×7 on 49 beats 5×10×10 on 50 for NAS SP class B")
	}
}

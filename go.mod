module genmp

go 1.22

// Command mpart computes a generalized multipartitioning: the optimal tile
// grid for a given processor count and array shape, and the modular
// tile-to-processor mapping, verified for the balance and neighbor
// properties. With -render it prints the Figure-1-style tile→processor
// table (d = 2 or 3).
//
// Usage:
//
//	mpart -p 16 -d 3 -render
//	mpart -p 50 -eta 102,102,102
//	mpart -p 30 -gamma 10,15,6
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"genmp/internal/core"
	"genmp/internal/modmap"
	"genmp/internal/obs"
	"genmp/internal/partition"
	"genmp/internal/plan"
	"genmp/internal/sweep"
)

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	toks := strings.Split(s, ",")
	out := make([]int, 0, len(toks))
	for _, tok := range toks {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad integer %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpart: ")
	p := flag.Int("p", 16, "number of processors")
	d := flag.Int("d", 3, "array dimensionality (when -eta and -gamma are absent)")
	etaStr := flag.String("eta", "", "array extents, e.g. 102,102,102 (drives the cost model)")
	gammaStr := flag.String("gamma", "", "explicit tile grid, e.g. 10,15,6 (skips the search)")
	render := flag.Bool("render", false, "print the tile→processor table (d = 2 or 3)")
	alternatives := flag.Int("alternatives", 0, "also list up to N distinct alternative legal mappings")
	planPath := flag.String("plan", "", "compile, validate and dump the tridiagonal SweepPlan over the mapping (requires -eta)")
	k2 := flag.Float64("k2", 20e-6, "per-phase start-up cost K2 (seconds)")
	k3 := flag.Float64("k3", 80e-9, "per-element transfer cost K3 (seconds)")
	flag.Parse()

	eta, err := parseInts(*etaStr)
	if err != nil {
		log.Fatal(err)
	}
	gamma, err := parseInts(*gammaStr)
	if err != nil {
		log.Fatal(err)
	}

	var m *core.Multipartitioning
	switch {
	case gamma != nil:
		if !partition.IsValid(*p, gamma) {
			log.Fatalf("%s is not a valid partitioning for p = %d: every slab tile count must be a multiple of p",
				partition.Describe(gamma), *p)
		}
		m, err = core.NewGeneralized(*p, gamma)
	case eta != nil:
		obj := partition.MachineObjective(eta, *k2, *k3/float64(*p))
		var res partition.Result
		res, err = partition.Optimal(*p, len(eta), obj)
		if err == nil {
			fmt.Printf("optimal partitioning for p=%d on %v: %s (objective %.4g)\n",
				*p, eta, partition.Describe(res.Gamma), res.Cost)
			m, err = core.NewGeneralized(*p, res.Gamma)
		}
	default:
		var res partition.Result
		res, err = partition.Optimal(*p, *d, partition.UniformObjective(*d))
		if err == nil {
			fmt.Printf("optimal partitioning for p=%d, d=%d (uniform objective): %s (Σγ = %.0f)\n",
				*p, *d, partition.Describe(res.Gamma), res.Cost)
			m, err = core.NewGeneralized(*p, res.Gamma)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	if err := m.Verify(); err != nil {
		log.Fatalf("property verification FAILED: %v", err)
	}
	fmt.Printf("mapping: %s — balance and neighbor properties verified\n", m.Name())
	fmt.Printf("tiles: %d total, %d per processor", m.NumTiles(), m.TilesPerProc())
	for dim := 0; dim < m.Dims(); dim++ {
		fmt.Printf(", %d/slab along dim %d", m.TilesPerSlab(dim), dim)
	}
	fmt.Println()

	if mm := m.Mapping(); mm != nil {
		fmt.Printf("modular mapping: m⃗ = %v, M =\n", mm.Mod)
		for _, row := range mm.M {
			fmt.Printf("  %v\n", row)
		}
	}
	for dim := 0; dim < m.Dims(); dim++ {
		fmt.Printf("neighbor of proc 0 along +dim %d: proc %d\n", dim, m.NeighborProc(0, dim, 1))
	}

	if *render {
		fmt.Println()
		if err := m.RenderSlices(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *planPath != "" {
		if eta == nil {
			log.Fatal("-plan needs -eta: a sweep plan is compiled against concrete array extents")
		}
		pl, err := plan.Compile(plan.Spec{M: m, Eta: eta, Solver: sweep.Tridiag{}})
		if err != nil {
			log.Fatal(err)
		}
		if err := pl.Validate(); err != nil {
			log.Fatalf("plan validation FAILED: %v", err)
		}
		src := fmt.Sprintf("mpart -p %d -eta %s -plan", *p, *etaStr)
		if err := obs.WritePlanJSON(*planPath, src, pl); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s", pl.Summary())
		fmt.Printf("plan validated and written to %s\n", *planPath)
	}

	if *alternatives > 0 {
		alts, err := modmap.Alternatives(*p, m.Gamma(), *alternatives)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d distinct legal mapping(s) via shape pre-permutation (the construction\nis one of a family — all verified balanced with the neighbor property):\n", len(alts))
		for i, a := range alts {
			if err := a.Verify(); err != nil {
				log.Fatalf("alternative %d failed verification: %v", i, err)
			}
			fmt.Printf("  #%d: m⃗ = %v, M = %v\n", i+1, a.Mod, a.M)
		}
	}
}

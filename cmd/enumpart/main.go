// Command enumpart explores the elementary-partitioning search space of
// Section 3: it lists the elementary partitionings for one processor count
// (the Section 3.2 examples) or tabulates how the search-space size grows
// with p (the Section 3.3 complexity study).
//
// Usage:
//
//	enumpart -p 30 -d 3
//	enumpart -growth 1000 -dims 3,4,5
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"genmp/internal/exp"
	"genmp/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("enumpart: ")
	p := flag.Int("p", 30, "processor count to enumerate")
	d := flag.Int("d", 3, "array dimensionality")
	growth := flag.Int("growth", 0, "tabulate elementary-partitioning counts for p = 1..N instead")
	dimsStr := flag.String("dims", "3,4,5", "dimensionalities for the growth table")
	top := flag.Int("top", 12, "growth table: show the N largest counts")
	factor := flag.Int("factor", 0, "run the Figure 2 generator: distributions of r=N instances of one factor into d bins")
	optimal := flag.Bool("optimal", false, "also run the optimal-partitioning search and report its statistics")
	serial := flag.Bool("serial", false, "force the serial search walk (default: fan out on large spaces)")
	flag.Parse()

	if *serial {
		partition.SetSearchParallelism(1)
	}

	if *factor > 0 {
		fmt.Printf("Figure 2 generator: distributions of r = %d instances of one prime\n", *factor)
		fmt.Printf("factor into d = %d bins (sum = r + m, max m in at least two bins):\n\n", *d)
		n := 0
		partition.EachDistribution(*factor, *d, func(bins []int) bool {
			fmt.Printf("  %v\n", bins)
			n++
			return true
		})
		fmt.Printf("\n%d distributions, each generated exactly once in linear time.\n", n)
		return
	}

	if *growth > 0 {
		var dims []int
		for _, tok := range strings.Split(*dimsStr, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 2 {
				log.Fatalf("bad dimensionality %q", tok)
			}
			dims = append(dims, v)
		}
		rows := exp.EnumerationGrowth(*growth, dims)
		sort.SliceStable(rows, func(a, b int) bool {
			return rows[a].Counts[len(dims)-1] > rows[b].Counts[len(dims)-1]
		})
		fmt.Printf("largest elementary-partitioning counts for p ≤ %d\n", *growth)
		fmt.Printf("%8s", "p")
		for _, dd := range dims {
			fmt.Printf("  %8s", fmt.Sprintf("d=%d", dd))
		}
		fmt.Println()
		for i := 0; i < *top && i < len(rows); i++ {
			fmt.Printf("%8d", rows[i].P)
			for _, c := range rows[i].Counts {
				fmt.Printf("  %8d", c)
			}
			fmt.Println()
		}
		fmt.Println("\nThe growth matches the paper's bound O((d(d−1)/2)^((1+o(1))·log p/log log p)):")
		fmt.Println("highly composite p dominate; prime powers stay tiny.")
		return
	}

	fmt.Printf("elementary partitionings of p = %d over d = %d dimensions\n", *p, *d)
	fmt.Printf("(the search space of the optimal-partitioning algorithm; %d candidates)\n\n",
		partition.CountElementary(*p, *d))
	for _, line := range exp.ElementaryInventory(*p, *d) {
		fmt.Println("  " + line)
	}
	fmt.Println("\nEach pattern is valid: every slab's tile count is a multiple of p,")
	fmt.Println("so a balanced multipartitioned mapping exists (Section 4).")

	if *optimal {
		var stats partition.SearchStats
		res, err := partition.OptimalStats(*p, *d, partition.UniformObjective(*d), &stats)
		if err != nil {
			log.Fatal(err)
		}
		mode := fmt.Sprintf("parallel ≤%d workers", partition.SearchParallelism())
		if *serial || partition.SearchParallelism() == 1 {
			mode = "serial"
		}
		fmt.Printf("\noptimal under uniform weights (%s search): %s, cost %g\n",
			mode, partition.Describe(res.Gamma), res.Cost)
		fmt.Println(stats.String())
	}
}

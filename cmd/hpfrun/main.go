// Command hpfrun is the end-to-end Section 5 pipeline: it reads a file of
// HPF directives (or uses a built-in SP-like program), plans the requested
// distribution — generalized multipartitioning for MULTI, block for BLOCK —
// and executes an ADI integration under it on the virtual machine,
// reporting timing, traffic and an optional rank timeline.
//
// Usage:
//
//	hpfrun -f program.f -steps 4
//	hpfrun -steps 2 -timeline -metrics -trace run.json
//	hpfrun -steps 2 -json out.json -profile prof.json   # benchdiff inputs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"genmp/internal/adi"
	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/hpf"
	"genmp/internal/nas"
	"genmp/internal/obs"
	"genmp/internal/obs/causal"
	"genmp/internal/obs/live"
	"genmp/internal/partition"
	planpkg "genmp/internal/plan"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

const builtin = `
      program demo
!HPF$ PROCESSORS P(12)
!HPF$ TEMPLATE T(72, 72, 72)
!HPF$ DISTRIBUTE T(MULTI, MULTI, MULTI) ONTO P
!HPF$ ALIGN U WITH T
!HPF$ SHADOW U(2, 2, 2)
!HPF$ ON_HOME U
      end
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("hpfrun: ")
	file := flag.String("f", "", "file with HPF directives (default: a built-in SP-like program)")
	template := flag.String("template", "", "template or aligned array to plan (default: the only one)")
	steps := flag.Int("steps", 2, "ADI timesteps to execute")
	timeline := flag.Bool("timeline", false, "render the ASCII rank timeline")
	tracePath := flag.String("trace", "", "write a Perfetto/Chrome trace-event JSON file")
	traceJSON := flag.String("tracejson", "", "write the round-trippable trace artifact (critpath input)")
	metrics := flag.Bool("metrics", false, "print the per-rank/per-phase profile")
	blame := flag.Bool("blame", false, "print makespan blame attribution from the causal engine")
	jsonPath := flag.String("json", "", "write machine-readable results (BENCH_*.json schema)")
	profilePath := flag.String("profile", "", "write the serialized per-phase profile (benchdiff input)")
	planPath := flag.String("plan", "", "write the compiled sweep schedule as plan JSON (the shippable schedule; reload with obs.LoadPlan)")
	overlap := flag.Bool("overlap", false, "execute with the plan-driven boundary-first overlap schedule (DESIGN.md §14); bench suites get a +overlap suffix")
	topology := flag.String("topology", "", "interconnect topology: crossbar, bus, hypercube, hypercube+contention (default: the network's scaling regime)")
	collName := flag.String("coll", "", "collective algorithm for transposes: auto, pairwise, ring, bruck")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics (/metrics Prometheus text, /metrics.json) and net/http/pprof on this address, e.g. localhost:9090")
	flightDepth := flag.Int("flightrec", 0, "per-rank flight-recorder ring depth: a deadlock dumps each rank's last N events (0 = off)")
	pprofLabels := flag.Bool("pprof-labels", false, "tag rank goroutines with rank/phase pprof labels (costs allocations; pair with /debug/pprof/profile)")
	flag.Parse()
	wantTrace := *timeline || *tracePath != "" || *traceJSON != "" || *metrics || *blame || *profilePath != ""

	tel, err := live.Start(live.Config{Addr: *metricsAddr, FlightDepth: *flightDepth, PProfLabels: *pprofLabels})
	if err != nil {
		log.Fatal(err)
	}
	if tel.Server != nil {
		log.Printf("serving live metrics on http://%s/metrics", tel.Server.Addr)
	}

	coll, err := sim.ParseAlg(*collName)
	if err != nil {
		log.Fatal(err)
	}

	src := builtin
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
	}
	dirs, err := hpf.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	name := *template
	if name == "" {
		if len(dirs.Templates) != 1 {
			log.Fatalf("program declares %d templates; pick one with -template", len(dirs.Templates))
		}
		for n := range dirs.Templates {
			name = n
		}
	}

	tmpl, ok := dirs.Templates[name]
	if !ok {
		// May be an aligned array; PlanTemplate resolves it.
		tmpl = hpf.Template{}
	}
	eta := tmpl.Eta
	var obj *partition.Objective
	if eta != nil {
		o := partition.MachineObjective(eta, 20e-6, 80e-9)
		obj = &o
	}
	plan, err := dirs.PlanTemplate(name, obj)
	if err != nil {
		log.Fatal(err)
	}
	eta = plan.Template.Eta

	ov := dist.HandCoded()
	if plan.PartialReplication {
		ov = dist.DHPF()
		fmt.Println("ON_HOME present: using the dHPF overhead model with partial replication")
	}

	mach, err := nas.Origin2000MachineOn(*topology, plan.P)
	if err != nil {
		log.Fatal(err)
	}
	mach.Coll = coll
	if wantTrace {
		mach.Trace = &sim.Trace{}
	}
	pb := adi.Problem{Eta: eta, Alpha: 0.3, Steps: *steps}
	var res sim.Result
	var swPlan *planpkg.SweepPlan
	ovl := planpkg.Overlap{Enabled: *overlap}
	variant, gammaStr := "serial", ""
	switch {
	case plan.Multi != nil:
		variant, gammaStr = "multi", partition.Describe(plan.Multi.Gamma())
		fmt.Printf("planned: %s over %v (shadow %v)\n", plan.Multi.Name(), eta, plan.ShadowWidths)
		if err := plan.Multi.Verify(); err != nil {
			log.Fatalf("verification failed: %v", err)
		}
		env, err := dist.NewEnv(plan.Multi, eta, ov)
		if err != nil {
			log.Fatal(err)
		}
		if *planPath != "" {
			if swPlan, err = planpkg.Compile(planpkg.Spec{M: plan.Multi, Eta: eta, Solver: sweep.Tridiag{}, Overlap: ovl}); err != nil {
				log.Fatal(err)
			}
		}
		res, err = adi.Run(pb, nil, adi.Config{
			Machine: mach, Strategy: adi.Multipartition, Env: env, ModelOnly: true,
			Overlap: planpkg.Overlap{Enabled: *overlap}})
		if err != nil {
			log.Fatal(err)
		}
	case plan.BlockDim >= 0:
		variant = fmt.Sprintf("block%d", plan.BlockDim)
		fmt.Printf("planned: BLOCK along dimension %d over %v on %d processors\n", plan.BlockDim, eta, plan.P)
		blk, err := dist.NewBlock(plan.P, eta, plan.BlockDim, ov)
		if err != nil {
			log.Fatal(err)
		}
		if *planPath != "" {
			if swPlan, err = planpkg.CompileWavefront(planpkg.WavefrontSpec{
				P: plan.P, Eta: eta, Dim: plan.BlockDim, Grain: 64, Solver: sweep.Tridiag{}, Overlap: ovl}); err != nil {
				log.Fatal(err)
			}
		}
		res, err = adi.Run(pb, nil, adi.Config{
			Machine: mach, Strategy: adi.BlockWavefront, Block: blk, Grain: 64, ModelOnly: true,
			Overlap: planpkg.Overlap{Enabled: *overlap}})
		if err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Println("planned: fully collapsed (serial)")
		env, err := trivialEnv(eta, ov)
		if err != nil {
			log.Fatal(err)
		}
		if *planPath != "" {
			if swPlan, err = planpkg.Compile(planpkg.Spec{M: env.M, Eta: eta, Solver: sweep.Tridiag{}}); err != nil {
				log.Fatal(err)
			}
		}
		res, err = adi.Run(pb, nil, adi.Config{
			Machine: mach, Strategy: adi.Multipartition, Env: env, ModelOnly: true})
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("ADI ×%d steps: virtual time %.3f ms, %d messages, %d bytes\n",
		*steps, res.Makespan*1e3, res.TotalMessages(), res.TotalBytes())
	if *timeline {
		fmt.Println()
		if err := mach.Trace.RenderTimeline(os.Stdout, plan.P, res.Makespan, 100); err != nil {
			log.Fatal(err)
		}
	}
	if *metrics {
		fmt.Println()
		fmt.Print(obs.NewProfile(res, mach.Trace).Format())
	}
	if *blame {
		rep, err := causal.Report(mach.Trace, plan.P, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(rep)
	}
	if *tracePath != "" {
		if err := obs.WriteTraceFile(*tracePath, mach.Trace, plan.P); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (load in ui.perfetto.dev)\n", *tracePath)
	}

	// Machine-readable outputs carry the reproducing command line and grid
	// parameters so a benchdiff report can say how to regenerate each side.
	fileID := *file
	if fileID == "" {
		fileID = "(builtin)"
	}
	overlapFlag := ""
	if *overlap {
		overlapFlag = " -overlap"
	}
	srcLine := fmt.Sprintf("hpfrun -f %s -steps %d%s%s (template %s, eta %s)",
		fileID, *steps, fabricFlags(*topology, *collName), overlapFlag, name, partition.Describe(eta))
	if *planPath != "" {
		if err := swPlan.Validate(); err != nil {
			log.Fatal(err)
		}
		if err := obs.WritePlanJSON(*planPath, srcLine+" -plan", swPlan); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan written to %s (%d ranks; reload with obs.LoadPlan)\n", *planPath, swPlan.P)
	}
	if *traceJSON != "" {
		if err := obs.WriteTraceJSON(*traceJSON, srcLine+" -tracejson", mach.Trace, plan.P, res.Makespan); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace artifact written to %s (analyze with critpath)\n", *traceJSON)
	}
	suiteSuffix := ""
	if *topology != "" && *topology != "default" {
		suiteSuffix = "@" + *topology
	}
	if *overlap {
		suiteSuffix += "+overlap"
	}
	if *profilePath != "" {
		if err := obs.WriteProfileJSON(*profilePath, srcLine+" -profile", obs.NewProfile(res, mach.Trace)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("profile written to %s (compare with benchdiff)\n", *profilePath)
	}
	if *jsonPath != "" {
		bf := obs.BenchFile{
			Source: srcLine + " -json",
			Records: []obs.BenchRecord{{
				Suite: "hpf-adi" + suiteSuffix, Name: fmt.Sprintf("%s-p%02d", variant, plan.P),
				P: plan.P, Eta: eta, Steps: *steps, Gamma: gammaStr,
				Makespan: res.Makespan,
				Messages: res.TotalMessages(), Bytes: res.TotalBytes(),
			}},
		}
		if err := obs.WriteBenchJSON(*jsonPath, bf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// fabricFlags renders the -topology/-coll flags for a BENCH source line,
// empty when both are defaulted so legacy source lines stay byte-identical.
func fabricFlags(topology, coll string) string {
	var s string
	if topology != "" && topology != "default" {
		s += " -topology " + topology
	}
	if coll != "" && coll != "auto" {
		s += " -coll " + coll
	}
	return s
}

func trivialEnv(eta []int, ov dist.OverheadModel) (*dist.Env, error) {
	ones := make([]int, len(eta))
	for i := range ones {
		ones[i] = 1
	}
	m, err := core.NewGeneralized(1, ones)
	if err != nil {
		return nil, err
	}
	return dist.NewEnv(m, eta, ov)
}

// Command spbench regenerates the paper's Table 1: NAS SP speedups of the
// hand-coded diagonal-multipartitioning MPI code (perfect-square processor
// counts only) versus dHPF-generated generalized multipartitioning (any
// processor count), on the virtual Origin 2000.
//
// Usage:
//
//	spbench [-class S|W|A|B] [-steps n] [-procs 1,4,9,...] [-json out.json]
//	spbench -p 16 -metrics -trace out.json   # one instrumented run
//	spbench -p 16 -profile out.json          # serialized profile for benchdiff
//	spbench -calibrate                       # cost-model audit per phase
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/dmem"
	"genmp/internal/exp"
	"genmp/internal/grid"
	"genmp/internal/nas"
	"genmp/internal/obs"
	"genmp/internal/obs/causal"
	"genmp/internal/obs/live"
	"genmp/internal/obs/metrics"
	"genmp/internal/partition"
	"genmp/internal/plan"
	"genmp/internal/redist"
	"genmp/internal/rt"
	"genmp/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spbench: ")
	className := flag.String("class", "B", "NAS problem class (S, W, A, B)")
	steps := flag.Int("steps", 2, "timesteps to simulate (speedups are per-step steady state)")
	procs := flag.String("procs", "", "comma-separated processor counts (default: the paper's Table 1 column)")
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of the formatted table")
	pFlag := flag.Int("p", 0, "run one instrumented SP configuration on this many processors instead of the table")
	backend := flag.String("backend", "sim", "execution backend for the -p run: sim (virtual-time Origin 2000) or rt (real-parallel goroutines, wall clock; runs the strict distributed-memory SP with overlap off and on, checking field bits against the simulator)")
	tracePath := flag.String("trace", "", "with -p: write a Perfetto/Chrome trace-event JSON file")
	traceJSON := flag.String("tracejson", "", "with -p: write the round-trippable trace artifact (critpath input)")
	metrics := flag.Bool("metrics", false, "with -p: print the per-rank/per-phase profile")
	blame := flag.Bool("blame", false, "with -p: print makespan blame attribution from the causal engine")
	calibrate := flag.Bool("calibrate", false, "audit the analytic cost model against the simulator, phase by phase")
	jsonPath := flag.String("json", "", "write machine-readable results (BENCH_*.json schema)")
	profilePath := flag.String("profile", "", "with -p: write the serialized per-phase profile (benchdiff input)")
	planPath := flag.String("plan", "", "with -p: write the compiled SweepPlan dump and print the plan-vs-observed traffic audit")
	redistPlanPath := flag.String("redistplan", "", "with -p: write the compiled BLOCK↔MULTI redistribution plan dump (REDIST_*.json) and print the plan-vs-counters byte audit")
	topology := flag.String("topology", "", "interconnect topology: crossbar, bus, hypercube, hypercube+contention (default: the network's scaling regime)")
	collName := flag.String("coll", "", "collective algorithm: auto, pairwise, ring, doubling, bruck (applies to the -p instrumented run)")
	dataMode := flag.Bool("data", false, "with -p: run in data mode (real arrays advanced in place) instead of model-only, exercising the payload pool and sweep arenas")
	overlap := flag.Bool("overlap", false, "with -p: compile the plan with the boundary-first overlap schedule (DESIGN.md §14); bench suites get a +overlap suffix")
	overlapCmp := flag.Bool("overlapcmp", false, "run the overlap experiment (SP p=16, 32³): overlap off vs on per fabric, measured recovery next to the causal what-if prediction; fails if the default fabric exceeds the predicted bound")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics (/metrics Prometheus text, /metrics.json) and net/http/pprof on this address, e.g. localhost:9090")
	flightDepth := flag.Int("flightrec", 0, "per-rank flight-recorder ring depth: a deadlock dumps each rank's last N events (0 = off)")
	pprofLabels := flag.Bool("pprof-labels", false, "tag rank goroutines with rank/phase pprof labels (costs allocations; pair with /debug/pprof/profile)")
	flag.Parse()

	tel, err := live.Start(live.Config{Addr: *metricsAddr, FlightDepth: *flightDepth, PProfLabels: *pprofLabels})
	if err != nil {
		log.Fatal(err)
	}
	if tel.Server != nil {
		log.Printf("serving live metrics on http://%s/metrics", tel.Server.Addr)
	}

	coll, err := sim.ParseAlg(*collName)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.NewFabric(*topology, sim.Network{}, 1); err != nil {
		log.Fatal(err)
	}
	// Non-default topologies get their own bench suites so their records sit
	// alongside the committed defaults without tripping the zero-tolerance
	// perf gate.
	suiteSuffix := ""
	if *topology != "" && *topology != "default" {
		suiteSuffix = "@" + *topology
	}

	classes := map[string]nas.Class{"S": nas.ClassS, "W": nas.ClassW, "A": nas.ClassA, "B": nas.ClassB}
	class, ok := classes[strings.ToUpper(*className)]
	if !ok {
		log.Fatalf("unknown class %q (want S, W, A or B)", *className)
	}
	if *procs != "" {
		var ps []int
		for _, tok := range strings.Split(*procs, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || p < 1 {
				log.Fatalf("bad processor count %q", tok)
			}
			ps = append(ps, p)
		}
		exp.Table1Procs = ps
	}

	if *overlapCmp {
		if err := runOverlapCmp(*steps, *jsonPath); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *pFlag > 0 && *backend == "rt" {
		src := sourceLine(class, *steps, *procs, fmt.Sprintf(" -backend rt -p %d", *pFlag))
		if err := runSingleReal(class, *steps, *pFlag, *jsonPath, src); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *backend != "sim" && *backend != "rt" {
		log.Fatalf("unknown backend %q (want sim or rt)", *backend)
	}
	if *backend == "rt" {
		log.Fatal("-backend rt needs -p (the table modes are virtual-time only)")
	}

	if *pFlag > 0 {
		extra := fabricFlags(*topology, *collName) + fmt.Sprintf(" -p %d", *pFlag)
		singleSuffix := suiteSuffix
		if *overlap {
			extra += " -overlap"
			singleSuffix += "+overlap"
		}
		src := sourceLine(class, *steps, *procs, extra)
		opts := singleOpts{
			class: class, steps: *steps, p: *pFlag, topology: *topology, coll: coll,
			suiteSuffix: singleSuffix, tracePath: *tracePath, traceJSONPath: *traceJSON,
			metrics: *metrics, blame: *blame, dataMode: *dataMode, overlap: *overlap,
			jsonPath: *jsonPath, profilePath: *profilePath, planPath: *planPath,
			redistPlanPath: *redistPlanPath, src: src,
		}
		if err := runSingle(opts); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *calibrate {
		rows, err := exp.CalibrateOn(*topology, class.Eta, *steps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cost-model calibration: SP class %s, %d step(s), hand-coded overheads\n", class.Name, *steps)
		fmt.Printf("(predicted = analytic cost.Calibrated model; measured = simulator per-phase mean)\n\n")
		fmt.Print(exp.FormatCalibration(rows))
		if *jsonPath != "" {
			src := sourceLine(class, *steps, *procs, fabricFlags(*topology, "")+" -calibrate")
			if err := writeCalibrationJSON(*jsonPath, class, *steps, rows, suiteSuffix, src); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nwrote %s\n", *jsonPath)
		}
		return
	}

	if !*csv {
		fmt.Printf("NAS SP class %s (%d×%d×%d), %d step(s), virtual Origin 2000\n\n",
			class.Name, class.Eta[0], class.Eta[1], class.Eta[2], *steps)
	}
	rows, err := exp.Table1On(*topology, class.Eta, *steps)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonPath != "" {
		src := sourceLine(class, *steps, *procs, fabricFlags(*topology, ""))
		if err := writeTable1JSON(*jsonPath, class, *steps, rows, suiteSuffix, src); err != nil {
			log.Fatal(err)
		}
		if !*csv {
			defer fmt.Printf("\nwrote %s\n", *jsonPath)
		}
	}
	if *csv {
		fmt.Println("cpus,hand_coded,dhpf,diff_pct,partitioning")
		for _, r := range rows {
			hand, dhpf, diff := "", "", ""
			if !math.IsNaN(r.Hand) {
				hand = fmt.Sprintf("%.4f", r.Hand)
			}
			if !math.IsNaN(r.DHPF) {
				dhpf = fmt.Sprintf("%.4f", r.DHPF)
			}
			if !math.IsNaN(r.DiffPct) {
				diff = fmt.Sprintf("%.2f", r.DiffPct)
			}
			fmt.Printf("%d,%s,%s,%s,%s\n", r.P, hand, dhpf, diff, r.GammaStr)
		}
		return
	}
	fmt.Print(exp.FormatTable1(rows))
	fmt.Fprintln(os.Stdout, "\nPaper columns are the published Table 1 (class B on a real Origin 2000);")
	fmt.Fprintln(os.Stdout, "compare shapes — who wins, scaling trend, and the 49-vs-50 CPU inversion.")
}

// sourceLine reconstructs the reproducing command line (output paths
// omitted) plus the grid parameters, recorded in BenchFile.Source and
// ProfileFile.Source so a diff report can say exactly how to regenerate
// either side.
func sourceLine(class nas.Class, steps int, procs, mode string) string {
	s := fmt.Sprintf("spbench -class %s -steps %d", class.Name, steps)
	if procs != "" {
		s += " -procs " + procs
	}
	return fmt.Sprintf("%s%s (eta %s)", s, mode, partition.Describe(class.Eta))
}

// fabricFlags reconstructs the non-default fabric flags for source lines.
func fabricFlags(topology, coll string) string {
	s := ""
	if topology != "" && topology != "default" {
		s += " -topology " + topology
	}
	if coll != "" && coll != "auto" {
		s += " -coll " + coll
	}
	return s
}

// singleOpts configures one instrumented SP run (the -p path).
type singleOpts struct {
	class          nas.Class
	steps, p       int
	topology       string
	coll           sim.Alg
	suiteSuffix    string
	tracePath      string // Perfetto/Chrome trace-event file
	traceJSONPath  string // round-trippable trace artifact (critpath input)
	metrics        bool
	blame          bool
	dataMode       bool
	overlap        bool
	jsonPath       string
	profilePath    string
	planPath       string
	redistPlanPath string
	src            string
}

// wantTrace reports whether any requested output needs event collection.
func (o singleOpts) wantTrace() bool {
	return o.metrics || o.blame || o.tracePath != "" || o.traceJSONPath != "" || o.profilePath != ""
}

// runSingle executes one SP configuration with full observability: search
// counters from the partitioning search, the per-phase profile (printable
// and serializable), a Perfetto-loadable trace, and the causal engine's
// blame attribution.
func runSingle(o singleOpts) error {
	class, steps, p := o.class, o.steps, o.p
	eta := class.Eta
	obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
	var st partition.SearchStats
	res, err := partition.OptimalCappedStats(p, len(eta), obj, eta, &st)
	if err != nil {
		return err
	}
	m, err := core.NewGeneralized(p, res.Gamma)
	if err != nil {
		return err
	}
	env, err := dist.NewEnv(m, eta, dist.DHPF())
	if err != nil {
		return err
	}
	base := nas.Origin2000Machine(p)
	cpu := base.CPU
	cpu.WorkingSetBytes = nas.WorkingSetBytes(eta, p)
	mach := sim.NewMachine(p, base.Net, cpu)
	fab, err := sim.NewFabric(o.topology, mach.Net, p)
	if err != nil {
		return err
	}
	mach.Fabric = fab
	mach.Coll = o.coll
	if o.wantTrace() {
		mach.Trace = &sim.Trace{}
	}
	// One compiled plan drives the run and the dump/audit: what the dump
	// shows is exactly the schedule the executor ran.
	pl, err := nas.CompilePlanOverlap(env, plan.Overlap{Enabled: o.overlap})
	if err != nil {
		return err
	}
	// Data mode advances a real array so carries travel in pooled payloads
	// and line data moves through the sweep arenas — the traffic the pool
	// and workspace hit-rate metrics measure. Virtual time is identical to
	// model-only.
	var u *grid.Grid
	if o.dataMode {
		u = nas.InitialState(eta)
	}
	simRes, err := nas.RunPlanned(env, mach, steps, u, pl)
	if err != nil {
		return err
	}
	fmt.Printf("SP class %s, %d step(s), p=%d, partitioning %s (dHPF overheads, %s fabric)\n",
		class.Name, steps, p, partition.Describe(res.Gamma), fab.Name())
	fmt.Println(st.String())
	fmt.Printf("makespan %.3f ms, %d messages, %d bytes\n",
		simRes.Makespan*1e3, simRes.TotalMessages(), simRes.TotalBytes())
	if o.metrics {
		fmt.Println()
		fmt.Print(obs.NewProfile(simRes, mach.Trace).Format())
	}
	if o.blame {
		rep, err := causal.Report(mach.Trace, p, 8)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(rep)
	}
	if o.tracePath != "" {
		if err := obs.WriteTraceFile(o.tracePath, mach.Trace, p); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (load in ui.perfetto.dev)\n", o.tracePath)
	}
	if o.traceJSONPath != "" {
		if err := obs.WriteTraceJSON(o.traceJSONPath, o.src+" -tracejson", mach.Trace, p, simRes.Makespan); err != nil {
			return err
		}
		fmt.Printf("trace artifact written to %s (analyze with critpath)\n", o.traceJSONPath)
	}
	if o.profilePath != "" {
		if err := obs.WriteProfileJSON(o.profilePath, o.src+" -profile", obs.NewProfile(simRes, mach.Trace)); err != nil {
			return err
		}
		fmt.Printf("profile written to %s (compare with benchdiff)\n", o.profilePath)
	}
	if o.planPath != "" {
		if err := pl.Validate(); err != nil {
			return err
		}
		if err := obs.WritePlanJSON(o.planPath, o.src+" -plan", pl); err != nil {
			return err
		}
		fmt.Printf("plan written to %s\n", o.planPath)
		rows := obs.AuditPlanBytes(pl, obs.NewProfile(simRes, mach.Trace), steps, nas.PhaseSolve)
		fmt.Println()
		fmt.Print(obs.FormatPlanAudit(rows))
	}
	if o.redistPlanPath != "" {
		if err := dumpRedistPlan(o, eta, m); err != nil {
			return err
		}
	}
	if o.jsonPath != "" {
		bf := obs.BenchFile{
			Source: o.src + " -json",
			Records: []obs.BenchRecord{{
				Suite: "sp-run" + o.suiteSuffix, Name: fmt.Sprintf("class%s-p%02d", class.Name, p),
				P: p, Eta: eta, Steps: steps, Gamma: partition.Describe(res.Gamma),
				Makespan: simRes.Makespan,
				Messages: simRes.TotalMessages(), Bytes: simRes.TotalBytes(),
				Extra: searchExtra(st),
			}},
		}
		if err := obs.WriteBenchJSON(o.jsonPath, bf); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.jsonPath)
	}
	return nil
}

// runSingleReal is the -backend rt path: one SP configuration executed on
// the real-parallel runtime (internal/rt) — goroutine ranks, shared-memory
// mailboxes, wall-clock time — with overlap off and then on. Each run's
// final field is checked bit for bit against the virtual-time simulator
// executing the identical compiled schedule, so a wall-clock row in
// BENCH_real.json always certifies backend equivalence too. Message and
// byte counts are schedule properties and reproduce exactly; wall seconds
// are host-dependent and gated only at a wide tolerance band in CI.
func runSingleReal(class nas.Class, steps, p int, jsonPath, src string) error {
	eta := class.Eta
	obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
	res, err := partition.OptimalCapped(p, len(eta), obj, eta)
	if err != nil {
		return err
	}
	m, err := core.NewGeneralized(p, res.Gamma)
	if err != nil {
		return err
	}
	env, err := dist.NewEnv(m, eta, dist.DHPF())
	if err != nil {
		return err
	}
	fmt.Printf("SP class %s, %d step(s), p=%d, partitioning %s — real-parallel backend (strict distributed memory, wall clock)\n\n",
		class.Name, steps, p, partition.Describe(res.Gamma))
	bf := obs.BenchFile{Source: src + " -json"}
	for _, o := range []plan.Overlap{{}, {Enabled: true}} {
		want, _, err := dmem.RunSPOverlap(env, nas.Origin2000Machine(p), steps, o)
		if err != nil {
			return err
		}
		got, rres, err := dmem.RunSPReal(env, rt.NewMachine(p), steps, o, nil)
		if err != nil {
			return err
		}
		if err := sameFieldBits(want, got); err != nil {
			return fmt.Errorf("rt backend diverged from the simulator (overlap=%v): %w", o.Enabled, err)
		}
		name := fmt.Sprintf("class%s-p%02d", class.Name, p)
		if o.Enabled {
			name += "+overlap"
		}
		fmt.Printf("  %-20s  wall %9.3f ms  %7d messages  %11d bytes  (field bits match sim)\n",
			name, float64(rres.Wall.Nanoseconds())/1e6, rres.TotalMessages(), rres.TotalBytes())
		bf.Records = append(bf.Records, obs.BenchRecord{
			Suite: "sp-real", Name: name,
			P: p, Eta: eta, Steps: steps, Gamma: partition.Describe(res.Gamma),
			Messages: rres.TotalMessages(), Bytes: rres.TotalBytes(),
			Extra: map[string]float64{"wall_sec": rres.Wall.Seconds()},
		})
	}
	if jsonPath != "" {
		if err := obs.WriteBenchJSON(jsonPath, bf); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}

// sameFieldBits reports the first element where two grids differ in raw
// float64 bit patterns.
func sameFieldBits(a, b *grid.Grid) error {
	da, db := a.Data(), b.Data()
	if len(da) != len(db) {
		return fmt.Errorf("field sizes differ: %d vs %d elements", len(da), len(db))
	}
	for i := range da {
		if math.Float64bits(da[i]) != math.Float64bits(db[i]) {
			return fmt.Errorf("element %d: %g (%#x) vs %g (%#x)",
				i, da[i], math.Float64bits(da[i]), db[i], math.Float64bits(db[i]))
		}
	}
	return nil
}

// dumpRedistPlan compiles the BLOCK(dim 0)→MULTI redistribution for the
// run's configuration — the move a solver alternating between a
// spectral-friendly block layout and the sweep-friendly multipartitioning
// performs every timestep — validates it, writes the dump, executes it
// model-only against a fresh metrics registry, and prints the
// plan-vs-counters byte audit (every delta must be zero).
func dumpRedistPlan(o singleOpts, eta []int, m *core.Multipartitioning) error {
	from, err := redist.NewBlockLayout(o.p, eta, 0)
	if err != nil {
		return err
	}
	to, err := redist.NewMultiLayout(m, eta)
	if err != nil {
		return err
	}
	rpl, err := redist.Compile(redist.Spec{From: from, To: to})
	if err != nil {
		return err
	}
	if err := rpl.Validate(); err != nil {
		return err
	}
	if err := obs.WriteRedistJSON(o.redistPlanPath, o.src+" -redistplan", rpl); err != nil {
		return err
	}
	fmt.Printf("redistribution plan written to %s\n", o.redistPlanPath)
	fmt.Print(rpl.Summary())
	reg := metrics.New()
	redist.EnableMetrics(reg)
	defer redist.EnableMetrics(nil)
	base := nas.Origin2000Machine(o.p)
	audMach := sim.NewMachine(o.p, base.Net, base.CPU)
	if _, err := audMach.Run(func(r *sim.Rank) {
		redist.Execute(r, rpl, redist.ExecOpts{Coll: o.coll})
	}); err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(obs.FormatRedistAudit(obs.AuditRedistBytes(rpl, reg.Snapshot(), 1)))
	return nil
}

// searchExtra flattens the partitioning-search counters into bench extras.
func searchExtra(st partition.SearchStats) map[string]float64 {
	return map[string]float64{
		"search_nodes":        float64(st.NodesVisited),
		"search_leaves":       float64(st.LeavesEvaluated),
		"search_space":        float64(st.BruteForceLeaves),
		"search_pruned_bound": float64(st.PrunedBound),
		"search_pruned_cap":   float64(st.PrunedCap),
	}
}

// writeTable1JSON emits the Table 1 reproduction in the BENCH_*.json schema:
// one record per (variant, p) cell plus the search counters of the
// partitioning chosen for the dHPF variant.
func writeTable1JSON(path string, class nas.Class, steps int, rows []exp.Table1Row, suiteSuffix, src string) error {
	bf := obs.BenchFile{Source: src + " -json"}
	for _, r := range rows {
		if !math.IsNaN(r.Hand) {
			bf.Records = append(bf.Records, obs.BenchRecord{
				Suite: "sp-table1-hand" + suiteSuffix, Name: fmt.Sprintf("p%02d", r.P),
				P: r.P, Eta: class.Eta, Steps: steps, Speedup: r.Hand,
			})
		}
		if !math.IsNaN(r.DHPF) {
			var st partition.SearchStats
			obj := partition.MachineObjective(class.Eta, 20e-6, 80e-9/float64(r.P))
			if _, err := partition.OptimalCappedStats(r.P, len(class.Eta), obj, class.Eta, &st); err != nil {
				return err
			}
			bf.Records = append(bf.Records, obs.BenchRecord{
				Suite: "sp-table1-dhpf" + suiteSuffix, Name: fmt.Sprintf("p%02d", r.P),
				P: r.P, Eta: class.Eta, Steps: steps, Gamma: r.GammaStr, Speedup: r.DHPF,
				Extra: searchExtra(st),
			})
		}
	}
	return obs.WriteBenchJSON(path, bf)
}

// runOverlapCmp is the -overlapcmp mode: the comm/compute overlap
// experiment (exp.OverlapComparisonOn) on the default crossbar, the bus,
// and the contended hypercube. Each fabric's report prints the measured
// solve-phase recovery next to the causal `critpath -whatif` prediction;
// the default fabric is the CI gate — its replay models exactly what the
// schedule changes, so measured recovery beyond the predicted bound means
// the overlap executor or the causal engine drifted. Contended fabrics are
// reported but not gated: link contention is invisible to the replay, so
// overlap may legitimately beat the bound there.
func runOverlapCmp(steps int, jsonPath string) error {
	const p = 16
	eta := []int{32, 32, 32}
	bf := obs.BenchFile{Source: fmt.Sprintf("spbench -overlapcmp -steps %d -json (eta %s)", steps, partition.Describe(eta))}
	var gateErr error
	for _, topo := range []string{"", "bus", "hypercube+contention"} {
		r, err := exp.OverlapComparisonOn(topo, p, eta, steps, 0)
		if err != nil {
			return err
		}
		name := topo
		if name == "" {
			name = "crossbar (default)"
		}
		fmt.Printf("— fabric %s —\n%s\n", name, exp.FormatOverlapComparison(r))
		if topo == "" && !r.WithinPredictedBound() {
			gateErr = fmt.Errorf("default fabric: measured recovery %.6gs exceeds the causal what-if bound %.6gs",
				r.MeasuredRecovery(), r.PredictedRecovery())
		}
		bf.Records = append(bf.Records, exp.OverlapRecords(topo, r)...)
	}
	if jsonPath != "" {
		if err := obs.WriteBenchJSON(jsonPath, bf); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return gateErr
}

// writeCalibrationJSON emits the audit rows in the BENCH_*.json schema.
func writeCalibrationJSON(path string, class nas.Class, steps int, rows []exp.CalibrationRow, suiteSuffix, src string) error {
	bf := obs.BenchFile{Source: src + " -json"}
	for _, r := range rows {
		bf.Records = append(bf.Records, obs.BenchRecord{
			Suite: "sp-calibration" + suiteSuffix, Name: fmt.Sprintf("p%02d-%s", r.P, r.Phase),
			P: r.P, Eta: class.Eta, Steps: steps, Gamma: partition.Describe(r.Gamma),
			Extra: map[string]float64{
				"predicted_sec": r.Predicted,
				"measured_sec":  r.Measured,
				"rel_err":       r.RelErr,
			},
		})
	}
	return obs.WriteBenchJSON(path, bf)
}

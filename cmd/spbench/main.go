// Command spbench regenerates the paper's Table 1: NAS SP speedups of the
// hand-coded diagonal-multipartitioning MPI code (perfect-square processor
// counts only) versus dHPF-generated generalized multipartitioning (any
// processor count), on the virtual Origin 2000.
//
// Usage:
//
//	spbench [-class S|W|A|B] [-steps n] [-procs 1,4,9,...]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"genmp/internal/exp"
	"genmp/internal/nas"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spbench: ")
	className := flag.String("class", "B", "NAS problem class (S, W, A, B)")
	steps := flag.Int("steps", 2, "timesteps to simulate (speedups are per-step steady state)")
	procs := flag.String("procs", "", "comma-separated processor counts (default: the paper's Table 1 column)")
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of the formatted table")
	flag.Parse()

	classes := map[string]nas.Class{"S": nas.ClassS, "W": nas.ClassW, "A": nas.ClassA, "B": nas.ClassB}
	class, ok := classes[strings.ToUpper(*className)]
	if !ok {
		log.Fatalf("unknown class %q (want S, W, A or B)", *className)
	}
	if *procs != "" {
		var ps []int
		for _, tok := range strings.Split(*procs, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || p < 1 {
				log.Fatalf("bad processor count %q", tok)
			}
			ps = append(ps, p)
		}
		exp.Table1Procs = ps
	}

	if !*csv {
		fmt.Printf("NAS SP class %s (%d×%d×%d), %d step(s), virtual Origin 2000\n\n",
			class.Name, class.Eta[0], class.Eta[1], class.Eta[2], *steps)
	}
	rows, err := exp.Table1(class.Eta, *steps)
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		fmt.Println("cpus,hand_coded,dhpf,diff_pct,partitioning")
		for _, r := range rows {
			hand, dhpf, diff := "", "", ""
			if !math.IsNaN(r.Hand) {
				hand = fmt.Sprintf("%.4f", r.Hand)
			}
			if !math.IsNaN(r.DHPF) {
				dhpf = fmt.Sprintf("%.4f", r.DHPF)
			}
			if !math.IsNaN(r.DiffPct) {
				diff = fmt.Sprintf("%.2f", r.DiffPct)
			}
			fmt.Printf("%d,%s,%s,%s,%s\n", r.P, hand, dhpf, diff, r.GammaStr)
		}
		return
	}
	fmt.Print(exp.FormatTable1(rows))
	fmt.Fprintln(os.Stdout, "\nPaper columns are the published Table 1 (class B on a real Origin 2000);")
	fmt.Fprintln(os.Stdout, "compare shapes — who wins, scaling trend, and the 49-vs-50 CPU inversion.")
}

// Command sweepbench compares the three parallelization strategies for
// line-sweep computations on the virtual machine (a van der Wijngaart-style
// study, Section 1/2 background): multipartitioning, static block with
// pipelined wavefronts, and dynamic block with transposes, over an ADI
// integration. It can also sweep the wavefront message granularity to show
// the fill/drain-vs-overhead tension.
//
// Usage:
//
//	sweepbench -p 16 -eta 64,64,64 -steps 2
//	sweepbench -p 16 -eta 64,64,64 -steps 2 -json out.json   # BENCH_*.json records
//	sweepbench -p 16 -eta 64,64,64 -grainsweep
//	sweepbench -p 16 -timeline -metrics -trace sweep.json
//	sweepbench -p 16 -profile sweep-profile.json             # benchdiff input
//	sweepbench -redist -p 4 -eta 32,32,32 -json BENCH_redist.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"genmp/internal/adi"
	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/dmem"
	"genmp/internal/exp"
	"genmp/internal/grid"
	"genmp/internal/nas"
	"genmp/internal/obs"
	"genmp/internal/obs/causal"
	"genmp/internal/obs/live"
	"genmp/internal/partition"
	"genmp/internal/plan"
	"genmp/internal/rt"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweepbench: ")
	p := flag.Int("p", 16, "number of processors")
	etaStr := flag.String("eta", "64,64,64", "array extents")
	steps := flag.Int("steps", 2, "ADI timesteps")
	grain := flag.Int("grain", 64, "wavefront message granularity (lines per message)")
	grainSweep := flag.Bool("grainsweep", false, "sweep wavefront granularities instead")
	backend := flag.String("backend", "sim", "execution backend: sim (virtual-time strategy comparison) or rt (real-parallel goroutines, wall clock; runs the strict distributed-memory ADI with overlap off and on, checking field bits against the simulator)")
	timeline := flag.Bool("timeline", false, "render an ASCII timeline of one multipartitioned sweep")
	tracePath := flag.String("trace", "", "write a Perfetto/Chrome trace of one multipartitioned sweep to this file")
	traceJSON := flag.String("tracejson", "", "write the round-trippable trace artifact of one multipartitioned sweep (critpath input)")
	metrics := flag.Bool("metrics", false, "print the per-phase profile of one multipartitioned sweep")
	blame := flag.Bool("blame", false, "print makespan blame attribution of one multipartitioned sweep")
	jsonPath := flag.String("json", "", "write the strategy comparison as machine-readable results (BENCH_*.json schema)")
	profilePath := flag.String("profile", "", "write the serialized profile of one multipartitioned sweep (benchdiff input)")
	planPath := flag.String("plan", "", "write the compiled SweepPlan of one multipartitioned sweep and print the plan-vs-observed traffic audit")
	topology := flag.String("topology", "", "interconnect topology: crossbar, bus, hypercube, hypercube+contention (default: the network's scaling regime); comma-separated list compares them")
	collName := flag.String("coll", "", "collective algorithm for transposes: auto, pairwise, ring, bruck")
	overlap := flag.Bool("overlap", false, "run sweeps with the plan-driven boundary-first overlap schedule (DESIGN.md §14); bench suites get a +overlap suffix")
	redistCmp := flag.Bool("redist", false, "run the redistribution-policy comparison (BLOCK↔MULTI switch each timestep vs dynamic-block transposes vs staying put)")
	redistBudget := flag.Int("redistbudget", 0, "per-rank staging budget in bytes for the -redist switch plans (0 = unbounded)")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics (/metrics Prometheus text, /metrics.json) and net/http/pprof on this address, e.g. localhost:9090")
	flightDepth := flag.Int("flightrec", 0, "per-rank flight-recorder ring depth: a deadlock dumps each rank's last N events (0 = off)")
	pprofLabels := flag.Bool("pprof-labels", false, "tag rank goroutines with rank/phase pprof labels (costs allocations; pair with /debug/pprof/profile)")
	flag.Parse()

	tel, err := live.Start(live.Config{Addr: *metricsAddr, FlightDepth: *flightDepth, PProfLabels: *pprofLabels})
	if err != nil {
		log.Fatal(err)
	}
	if tel.Server != nil {
		log.Printf("serving live metrics on http://%s/metrics", tel.Server.Addr)
	}

	coll, err := sim.ParseAlg(*collName)
	if err != nil {
		log.Fatal(err)
	}
	var eta []int
	for _, tok := range strings.Split(*etaStr, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 2 {
			log.Fatalf("bad extent %q", tok)
		}
		eta = append(eta, v)
	}

	if *redistCmp {
		fmt.Printf("redistribution policy comparison: p=%d, η=%v, %d step(s)\n\n", *p, eta, *steps)
		rows, err := exp.RedistComparisonOn(*topology, coll, *p, eta, *steps, *redistBudget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(exp.FormatRedistComparison(rows))
		if *jsonPath != "" {
			recs, err := exp.RedistBenchRecordsOn(*topology, coll, *p, eta, *steps, *redistBudget)
			if err != nil {
				log.Fatal(err)
			}
			src := fmt.Sprintf("sweepbench -redist -p %d -eta %s -steps %d -redistbudget %d%s -json (eta %s)",
				*p, *etaStr, *steps, *redistBudget, fabricFlags(*topology, *collName), partition.Describe(eta))
			if err := obs.WriteBenchJSON(*jsonPath, obs.BenchFile{Source: src, Records: recs}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nwrote %s\n", *jsonPath)
		}
		return
	}

	ov := plan.Overlap{Enabled: *overlap}

	if *backend != "sim" && *backend != "rt" {
		log.Fatalf("unknown backend %q (want sim or rt)", *backend)
	}
	if *backend == "rt" {
		src := fmt.Sprintf("sweepbench -backend rt -p %d -eta %s -steps %d -json (eta %s)",
			*p, *etaStr, *steps, partition.Describe(eta))
		if err := runRealADI(*p, eta, *steps, *jsonPath, src); err != nil {
			log.Fatal(err)
		}
		return
	}

	if strings.Contains(*topology, ",") {
		topos := strings.Split(*topology, ",")
		for i := range topos {
			topos[i] = strings.TrimSpace(topos[i])
		}
		fmt.Printf("ADI strategy comparison across topologies: p=%d, η=%v, %d step(s)%s\n\n",
			*p, eta, *steps, overlapNote(*overlap))
		var rows []exp.TopologyRow
		for _, topo := range topos {
			rs, err := exp.StrategyComparisonOverlap(topo, coll, *p, eta, *steps, *grain, ov)
			if err != nil {
				log.Fatalf("topology %q: %v", topo, err)
			}
			rows = append(rows, exp.TopologyRow{Topology: topo, Rows: rs})
		}
		fmt.Print(exp.FormatTopologyComparison(rows))
		if *jsonPath != "" {
			var recs []obs.BenchRecord
			for _, topo := range topos {
				rs, err := exp.StrategyBenchRecordsOverlap(topo, coll, *p, eta, *steps, *grain, ov)
				if err != nil {
					log.Fatal(err)
				}
				recs = append(recs, rs...)
			}
			src := fmt.Sprintf("sweepbench -p %d -eta %s -steps %d -grain %d -topology %s%s -json (eta %s)",
				*p, *etaStr, *steps, *grain, *topology, overlapFlag(*overlap), partition.Describe(eta))
			if err := obs.WriteBenchJSON(*jsonPath, obs.BenchFile{Source: src, Records: recs}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nwrote %s\n", *jsonPath)
		}
		return
	}

	if *timeline || *tracePath != "" || *traceJSON != "" || *metrics || *blame || *profilePath != "" || *planPath != "" {
		src := fmt.Sprintf("sweepbench -p %d -eta %s%s%s -profile (eta %s)", *p, *etaStr, fabricFlags(*topology, *collName), overlapFlag(*overlap), partition.Describe(eta))
		if err := instrumentedSweep(*p, eta, *topology, coll, ov, *timeline, *tracePath, *traceJSON, *metrics, *blame, *profilePath, *planPath, src); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *grainSweep {
		blk, err := dist.NewBlock(*p, eta, 0, dist.HandCoded())
		if err != nil {
			log.Fatal(err)
		}
		lines := 1
		for _, e := range eta[1:] {
			lines *= e
		}
		fmt.Printf("wavefront granularity sweep: p=%d, η=%v (%d lines along dim 0)\n\n", *p, eta, lines)
		fmt.Printf("%10s  %14s  %10s\n", "grain", "virtual time", "messages")
		for g := 1; g <= lines; g *= 2 {
			mach, err := nas.Origin2000MachineOn(*topology, *p)
			if err != nil {
				log.Fatal(err)
			}
			mach.Coll = coll
			res, err := mach.Run(func(r *sim.Rank) {
				blk.WavefrontSweep(r, sweep.Tridiag{}, nil, g)
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10d  %12.3fms  %10d\n", g, res.Makespan*1e3, res.TotalMessages())
		}
		fmt.Println("\nSmall grains maximize pipeline overlap but pay per-message overhead;")
		fmt.Println("large grains serialize the pipeline — the Section 1 tension.")
		return
	}

	fmt.Printf("ADI strategy comparison: p=%d, η=%v, %d step(s) (virtual Origin 2000)%s\n\n", *p, eta, *steps, overlapNote(*overlap))
	rows, err := exp.StrategyComparisonOverlap(*topology, coll, *p, eta, *steps, *grain, ov)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s  %14s  %12s  %10s\n", "strategy", "virtual time", "bytes", "messages")
	for _, r := range rows {
		fmt.Printf("%-34s  %12.3fms  %12d  %10d\n", r.Strategy, r.Time*1e3, r.Bytes, r.Messages)
	}
	if *jsonPath != "" {
		recs, err := exp.StrategyBenchRecordsOverlap(*topology, coll, *p, eta, *steps, *grain, ov)
		if err != nil {
			log.Fatal(err)
		}
		src := fmt.Sprintf("sweepbench -p %d -eta %s -steps %d -grain %d%s%s -json (eta %s)",
			*p, *etaStr, *steps, *grain, fabricFlags(*topology, *collName), overlapFlag(*overlap), partition.Describe(eta))
		if err := obs.WriteBenchJSON(*jsonPath, obs.BenchFile{Source: src, Records: recs}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
	fmt.Println("\nMultipartitioning keeps every processor busy in every phase with only")
	fmt.Println("coarse-grain carry messages — the property the paper generalizes to any p.")
}

// runRealADI is the -backend rt path: the strict distributed-memory ADI
// integration executed on the real-parallel runtime (internal/rt), overlap
// off and then on, each run's final field checked bit for bit against the
// virtual-time simulator executing the identical compiled schedule. Message
// and byte counts are schedule properties and reproduce exactly; wall
// seconds are host-dependent and gated only at a wide tolerance band in CI.
func runRealADI(p int, eta []int, steps int, jsonPath, src string) error {
	obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
	m, err := core.NewOptimal(p, len(eta), obj)
	if err != nil {
		return err
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		return err
	}
	pb := adi.Problem{Eta: eta, Alpha: 0.3, Steps: steps}
	fmt.Printf("ADI strict distributed memory: p=%d, eta=%v, %d step(s), partitioning %s — real-parallel backend (wall clock)\n\n",
		p, eta, steps, partition.Describe(m.Gamma()))
	bf := obs.BenchFile{Source: src}
	for _, o := range []plan.Overlap{{}, {Enabled: true}} {
		want, _, err := dmem.RunADIOverlap(pb, env, nas.Origin2000Machine(p), o)
		if err != nil {
			return err
		}
		got, rres, err := dmem.RunADIReal(pb, env, rt.NewMachine(p), o, nil)
		if err != nil {
			return err
		}
		if err := sameFieldBits(want, got); err != nil {
			return fmt.Errorf("rt backend diverged from the simulator (overlap=%v): %w", o.Enabled, err)
		}
		name := fmt.Sprintf("multi-p%02d", p)
		if o.Enabled {
			name += "+overlap"
		}
		fmt.Printf("  %-20s  wall %9.3f ms  %7d messages  %11d bytes  (field bits match sim)\n",
			name, float64(rres.Wall.Nanoseconds())/1e6, rres.TotalMessages(), rres.TotalBytes())
		bf.Records = append(bf.Records, obs.BenchRecord{
			Suite: "adi-real", Name: name,
			P: p, Eta: eta, Steps: steps, Gamma: partition.Describe(m.Gamma()),
			Messages: rres.TotalMessages(), Bytes: rres.TotalBytes(),
			Extra: map[string]float64{"wall_sec": rres.Wall.Seconds()},
		})
	}
	if jsonPath != "" {
		if err := obs.WriteBenchJSON(jsonPath, bf); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}

// sameFieldBits reports the first element where two grids differ in raw
// float64 bit patterns.
func sameFieldBits(a, b *grid.Grid) error {
	da, db := a.Data(), b.Data()
	if len(da) != len(db) {
		return fmt.Errorf("field sizes differ: %d vs %d elements", len(da), len(db))
	}
	for i := range da {
		if math.Float64bits(da[i]) != math.Float64bits(db[i]) {
			return fmt.Errorf("element %d: %g (%#x) vs %g (%#x)",
				i, da[i], math.Float64bits(da[i]), db[i], math.Float64bits(db[i]))
		}
	}
	return nil
}

// fabricFlags renders the -topology/-coll flags for a BENCH source line,
// empty when both are defaulted so legacy source lines stay byte-identical.
func fabricFlags(topology, coll string) string {
	var s string
	if topology != "" && topology != "default" {
		s += " -topology " + topology
	}
	if coll != "" && coll != "auto" {
		s += " -coll " + coll
	}
	return s
}

// overlapFlag renders the -overlap flag for a BENCH source line, empty when
// off so legacy source lines stay byte-identical.
func overlapFlag(on bool) string {
	if on {
		return " -overlap"
	}
	return ""
}

// overlapNote annotates table headers when the overlap schedule is active.
func overlapNote(on bool) string {
	if on {
		return ", boundary-first overlap"
	}
	return ""
}

// instrumentedSweep runs one multipartitioned tridiagonal sweep with
// tracing and renders whichever views were requested: the ASCII per-rank
// timeline (the balance property appears as compute bars of equal length in
// every phase on every rank), the per-phase profile (printed and/or
// serialized for benchdiff), and a Perfetto trace.
func instrumentedSweep(p int, eta []int, topology string, coll sim.Alg, ov plan.Overlap, timeline bool, tracePath, traceJSONPath string, metrics, blame bool, profilePath, planPath, src string) error {
	obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
	m, err := core.NewOptimal(p, len(eta), obj)
	if err != nil {
		return err
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		return err
	}
	ms, err := dist.NewMultiSweep(env, sweep.Tridiag{}, nil)
	if err != nil {
		return err
	}
	ms.Overlap = ov
	mach, err := nas.Origin2000MachineOn(topology, p)
	if err != nil {
		return err
	}
	mach.Coll = coll
	mach.Trace = &sim.Trace{}
	res, err := mach.Run(func(r *sim.Rank) {
		r.BeginPhase("sweep0")
		ms.Run(r, 0)
	})
	if err != nil {
		return err
	}
	fmt.Printf("one sweep along dim 0, %s on %v: %d events, makespan %.3f ms\n",
		m.Name(), eta, mach.Trace.Len(), res.Makespan*1e3)
	if timeline {
		fmt.Println("(# compute, > send, < recv/wait, . idle)")
		if err := mach.Trace.RenderTimeline(os.Stdout, p, res.Makespan, 100); err != nil {
			return err
		}
	}
	if metrics {
		fmt.Println()
		fmt.Print(obs.NewProfile(res, mach.Trace).Format())
	}
	if blame {
		rep, err := causal.Report(mach.Trace, p, 8)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(rep)
	}
	if tracePath != "" {
		if err := obs.WriteTraceFile(tracePath, mach.Trace, p); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (load in ui.perfetto.dev)\n", tracePath)
	}
	if traceJSONPath != "" {
		if err := obs.WriteTraceJSON(traceJSONPath, src+" -tracejson", mach.Trace, p, res.Makespan); err != nil {
			return err
		}
		fmt.Printf("trace artifact written to %s (analyze with critpath)\n", traceJSONPath)
	}
	if profilePath != "" {
		if err := obs.WriteProfileJSON(profilePath, src, obs.NewProfile(res, mach.Trace)); err != nil {
			return err
		}
		fmt.Printf("profile written to %s (compare with benchdiff)\n", profilePath)
	}
	if planPath != "" {
		pl := ms.CompiledPlan()
		if err := pl.Validate(); err != nil {
			return err
		}
		if err := obs.WritePlanJSON(planPath, src+" -plan", pl); err != nil {
			return err
		}
		fmt.Printf("plan written to %s\n", planPath)
		// The run above swept dim 0 once under the "sweep0" label; audit the
		// plan's dim-0 traffic against it.
		rows := obs.AuditPlanBytes(pl, obs.NewProfile(res, mach.Trace), 1, func(dim int) string {
			if dim == 0 {
				return "sweep0"
			}
			return ""
		})
		fmt.Println()
		fmt.Print(obs.FormatPlanAudit(rows))
	}
	return nil
}

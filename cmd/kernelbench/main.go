// Command kernelbench measures the line-batched sweep kernels and emits the
// BENCH_kernels.json artifact consumed by the CI perf gate.
//
// Two suites:
//
//   - kernels-sim: virtual-machine results (makespan, messages, bytes) of
//     the strict distributed SP driver and of a data-mode multipartitioned
//     pentadiagonal sweep in both scalar and batched mode. Everything here
//     is bit-reproducible, so the CI gate diffs it at zero tolerance; the
//     scalar and batched rows must stay identical to each other (batching
//     is a kernel-level change, invisible to the cost model), and the tool
//     itself verifies the two runs produce bitwise-identical grid data.
//
//   - kernels-wall: wall-clock ns/element and allocations per run for the
//     scalar and batched paths, plus the batched-over-scalar speedup.
//     These are host-dependent; the CI gate diffs them with wide relative
//     tolerance (-tol 'kernels-wall=1.0') to catch only gross regressions
//     (e.g. the batched path silently falling back to scalar).
//
// Usage:
//
//	kernelbench                 # print the table
//	kernelbench -json out.json  # also write the bench artifact
//	kernelbench -iters 9        # more wall-clock repetitions (median)
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/dmem"
	"genmp/internal/grid"
	"genmp/internal/nas"
	"genmp/internal/obs"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kernelbench: ")
	jsonPath := flag.String("json", "", "write machine-readable results (BENCH_*.json schema)")
	iters := flag.Int("iters", 5, "wall-clock repetitions per configuration (median is reported)")
	flag.Parse()

	var records []obs.BenchRecord
	records = append(records, simSuite()...)
	records = append(records, wallSuite(*iters)...)

	printTable(records)

	if *jsonPath != "" {
		bf := obs.BenchFile{
			Source:  "kernelbench -json (kernels-sim is bit-reproducible; kernels-wall is host wall-clock, gated at wide tolerance)",
			Records: records,
		}
		if err := obs.WriteBenchJSON(*jsonPath, bf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d records)\n", *jsonPath, len(records))
	}
}

// spCase runs the strict distributed-memory SP driver and records its
// virtual results.
func spCase(p int, gamma, eta []int, steps int) obs.BenchRecord {
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		log.Fatal(err)
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		log.Fatal(err)
	}
	_, res, err := dmem.RunSP(env, nas.Origin2000Machine(p), steps)
	if err != nil {
		log.Fatal(err)
	}
	return obs.BenchRecord{
		Suite:    "kernels-sim",
		Name:     fmt.Sprintf("strict-sp-%d", eta[0]),
		P:        p,
		Eta:      eta,
		Steps:    steps,
		Gamma:    gammaString(gamma),
		Makespan: res.Makespan,
		Messages: res.TotalMessages(),
		Bytes:    res.TotalBytes(),
	}
}

func gammaString(gamma []int) string {
	s := ""
	for i, g := range gamma {
		if i > 0 {
			s += "×"
		}
		s += fmt.Sprint(g)
	}
	return s
}

// pentaSystem builds the shared random pentadiagonal test system (band
// entries that would reach outside a line along dim 0 zeroed).
func pentaSystem(eta []int) []*grid.Grid {
	rng := rand.New(rand.NewSource(17))
	sv := sweep.NewPenta()
	gs := make([]*grid.Grid, sv.NumVecs())
	for i := range gs {
		gs[i] = grid.New(eta...)
	}
	n := eta[0]
	for k := 1; k <= sv.KL; k++ {
		k := k
		gs[k-1].FillFunc(func(idx []int) float64 {
			if idx[0] < k {
				return 0
			}
			return rng.Float64() - 0.5
		})
	}
	gs[sv.KL].FillFunc(func([]int) float64 { return 8 + rng.Float64() })
	for u := 1; u <= sv.KU; u++ {
		u := u
		gs[sv.KL+u].FillFunc(func(idx []int) float64 {
			if idx[0] >= n-u {
				return 0
			}
			return rng.Float64() - 0.5
		})
	}
	gs[sv.KL+sv.KU+1].FillFunc(func([]int) float64 { return rng.Float64()*10 - 5 })
	return gs
}

// pentaSweep is one measurable configuration: a data-mode multipartitioned
// pentadiagonal sweep along dim 0 with a fixed batch setting.
type pentaSweep struct {
	p     int
	gamma []int
	eta   []int
	ms    *dist.MultiSweep
	mach  *sim.Machine
	work  []*grid.Grid
	prist [][]float64
}

func newPentaSweep(p int, gamma, eta []int, batch int) *pentaSweep {
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		log.Fatal(err)
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		log.Fatal(err)
	}
	work := pentaSystem(eta)
	prist := make([][]float64, len(work))
	for v := range work {
		prist[v] = append([]float64(nil), work[v].Data()...)
	}
	ms, err := dist.NewMultiSweep(env, sweep.NewPenta(), work)
	if err != nil {
		log.Fatal(err)
	}
	ms.Batch = batch
	return &pentaSweep{p: p, gamma: gamma, eta: eta, ms: ms,
		mach: nas.Origin2000Machine(p), work: work, prist: prist}
}

func (ps *pentaSweep) run() sim.Result {
	for v := range ps.work {
		copy(ps.work[v].Data(), ps.prist[v])
	}
	res, err := ps.mach.Run(func(r *sim.Rank) { ps.ms.Run(r, 0) })
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func (ps *pentaSweep) elements() int {
	n := 1
	for _, e := range ps.eta {
		n *= e
	}
	return n
}

func simSuite() []obs.BenchRecord {
	records := []obs.BenchRecord{
		spCase(8, []int{4, 4, 2}, []int{24, 24, 24}, 1),
		spCase(16, []int{4, 4, 4}, []int{32, 32, 32}, 1),
	}
	// Batched vs scalar must be invisible to the virtual machine: identical
	// makespans, identical traffic, bitwise-identical grid data.
	p, gamma, eta := 8, []int{4, 4, 2}, []int{32, 32, 32}
	scalar := newPentaSweep(p, gamma, eta, -1)
	batched := newPentaSweep(p, gamma, eta, 0)
	sres := scalar.run()
	bres := batched.run()
	for v := range scalar.work {
		sd, bd := scalar.work[v].Data(), batched.work[v].Data()
		for i := range sd {
			if math.Float64bits(sd[i]) != math.Float64bits(bd[i]) {
				log.Fatalf("batched sweep diverges from scalar: vec %d element %d: %v vs %v", v, i, sd[i], bd[i])
			}
		}
	}
	if sres.Makespan != bres.Makespan {
		log.Fatalf("batched sweep changed the virtual makespan: scalar %g vs batched %g", sres.Makespan, bres.Makespan)
	}
	for _, c := range []struct {
		name string
		res  sim.Result
	}{{"penta-scalar", sres}, {"penta-batched", bres}} {
		records = append(records, obs.BenchRecord{
			Suite:    "kernels-sim",
			Name:     c.name,
			P:        p,
			Eta:      eta,
			Gamma:    gammaString(gamma),
			Makespan: c.res.Makespan,
			Messages: c.res.TotalMessages(),
			Bytes:    c.res.TotalBytes(),
		})
	}
	return records
}

// wallTime returns the median wall-clock duration and mean allocations of
// iters runs of f (after one warm-up run).
func wallTime(iters int, f func()) (time.Duration, float64) {
	f() // warm arenas, geometry caches, and pools
	times := make([]time.Duration, iters)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := range times {
		start := time.Now()
		f()
		times[i] = time.Since(start)
	}
	runtime.ReadMemStats(&ms1)
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
	return times[iters/2], allocs
}

func wallSuite(iters int) []obs.BenchRecord {
	p, gamma, eta := 8, []int{4, 4, 2}, []int{32, 32, 32}
	scalar := newPentaSweep(p, gamma, eta, -1)
	batched := newPentaSweep(p, gamma, eta, 0)
	elems := float64(scalar.elements())

	st, sa := wallTime(iters, func() { scalar.run() })
	bt, ba := wallTime(iters, func() { batched.run() })

	rec := func(name string, t time.Duration, allocs float64) obs.BenchRecord {
		return obs.BenchRecord{
			Suite: "kernels-wall",
			Name:  name,
			P:     p,
			Eta:   eta,
			Gamma: gammaString(gamma),
			Extra: map[string]float64{
				"wall_ns_per_element": float64(t.Nanoseconds()) / elems,
				"allocs_per_run":      allocs,
			},
		}
	}
	sRec := rec("penta-scalar", st, sa)
	bRec := rec("penta-batched", bt, ba)
	bRec.Speedup = float64(st) / float64(bt)
	return []obs.BenchRecord{sRec, bRec}
}

func printTable(records []obs.BenchRecord) {
	w := os.Stdout
	fmt.Fprintf(w, "%-14s %-16s %4s  %12s %9s %12s %8s %14s %12s\n",
		"suite", "name", "p", "makespan", "msgs", "bytes", "speedup", "ns/element", "allocs/run")
	for _, r := range records {
		mk := ""
		if r.Makespan != 0 {
			mk = fmt.Sprintf("%.6gs", r.Makespan)
		}
		sp := ""
		if r.Speedup != 0 {
			sp = fmt.Sprintf("%.2f×", r.Speedup)
		}
		nsPer, allocs := "", ""
		if v, ok := r.Extra["wall_ns_per_element"]; ok {
			nsPer = fmt.Sprintf("%.1f", v)
		}
		if v, ok := r.Extra["allocs_per_run"]; ok {
			allocs = fmt.Sprintf("%.0f", v)
		}
		fmt.Fprintf(w, "%-14s %-16s %4d  %12s %9d %12d %8s %14s %12s\n",
			r.Suite, r.Name, r.P, mk, r.Messages, r.Bytes, sp, nsPer, allocs)
	}
}

// Command critpath runs the causal analysis engine over a recorded trace
// artifact (obs.WriteTraceJSON): it rebuilds the happens-before DAG,
// replays the schedule, extracts the critical chain, attributes makespan
// blame by phase, kind and link, and answers what-if questions without
// rerunning the simulator.
//
//	critpath trace.json                      blame report (text)
//	critpath -md -top 5 trace.json           markdown tables
//	critpath -json trace.json                machine-readable report
//	critpath -path 6 trace.json              also show the chain's ends
//	critpath -whatif 'overlap:phase=solve0' trace.json
//	critpath -whatif 'scale-link:0->1:0.5; zero-wait:phase=halo' trace.json
//	critpath -selftest trace.json            verify replay fidelity (CI gate)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"genmp/internal/obs"
	"genmp/internal/obs/causal"
)

func main() {
	top := flag.Int("top", 8, "rows per blame view (0 = all)")
	pathN := flag.Int("path", 0, "show this many leading and trailing critical-chain steps (0 = none)")
	md := flag.Bool("md", false, "render blame as markdown tables")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON")
	whatif := flag.String("whatif", "", "perturbation expression, e.g. 'overlap:phase=solve0,frac=0.25; scale-link:0->1:2'")
	selftest := flag.Bool("selftest", false, "verify identity-replay fidelity against the recorded makespan and exit")
	outPath := flag.String("o", "", "write the report to this file instead of stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: critpath [flags] trace.json\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	if err := run(flag.Arg(0), *top, *pathN, *md, *jsonOut, *whatif, *selftest, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "critpath:", err)
		os.Exit(1)
	}
}

func run(tracePath string, top, pathN int, md, jsonOut bool, whatif string, selftest bool, outPath string) error {
	tf, err := obs.ReadTraceJSON(tracePath)
	if err != nil {
		return err
	}
	tr, err := tf.Trace()
	if err != nil {
		return err
	}
	dag, err := causal.Build(tr, tf.P)
	if err != nil {
		return err
	}
	sched, err := dag.Replay()
	if err != nil {
		return err
	}

	if selftest {
		return runSelftest(tf, dag, sched, tracePath)
	}

	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	blame := sched.Blame()
	report := reportJSON{
		Trace:    tracePath,
		Source:   tf.Source,
		P:        tf.P,
		Makespan: sched.Makespan,
		BusyPath: dag.BusyCriticalPath(),
		MsgEdges: dag.MsgEdges,
		Blame:    blame,
	}

	var perturbed *causal.Schedule
	if whatif != "" {
		perts, err := causal.ParsePerturbations(whatif)
		if err != nil {
			return err
		}
		perturbed, err = dag.Replay(perts...)
		if err != nil {
			return err
		}
		report.WhatIf = &whatIfJSON{
			Expr:      whatif,
			Predicted: perturbed.Makespan,
			Delta:     perturbed.Makespan - sched.Makespan,
			Blame:     perturbed.Blame(),
		}
	}

	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}

	render := blame.Format
	if md {
		render = blame.Markdown
	}
	fmt.Fprintf(out, "trace %s  (p=%d", tracePath, tf.P)
	if tf.Source != "" {
		fmt.Fprintf(out, ", source: %s", tf.Source)
	}
	fmt.Fprintf(out, ")\nbusy critical path %s  (%.1f%% of makespan)  message edges %d\n\n",
		fmtSec(report.BusyPath), 100*report.BusyPath/sched.Makespan, dag.MsgEdges)
	fmt.Fprint(out, render(top))
	if pathN > 0 {
		fmt.Fprintf(out, "\n%s", causal.FormatChain(sched.Chain(), pathN, pathN))
	}
	if perturbed != nil {
		fmt.Fprintf(out, "\nwhat-if %q:\n  predicted makespan %s  (delta %+.6g µs, %+.2f%%)\n\n",
			whatif, fmtSec(perturbed.Makespan),
			(perturbed.Makespan-sched.Makespan)*1e6,
			100*(perturbed.Makespan-sched.Makespan)/sched.Makespan)
		pb := perturbed.Blame()
		prender := pb.Format
		if md {
			prender = pb.Markdown
		}
		fmt.Fprint(out, prender(top))
	}
	return nil
}

type reportJSON struct {
	Trace    string        `json:"trace"`
	Source   string        `json:"source,omitempty"`
	P        int           `json:"p"`
	Makespan float64       `json:"makespan_sec"`
	BusyPath float64       `json:"busy_critical_path_sec"`
	MsgEdges int           `json:"message_edges"`
	Blame    *causal.Blame `json:"blame"`
	WhatIf   *whatIfJSON   `json:"whatif,omitempty"`
}

type whatIfJSON struct {
	Expr      string        `json:"expr"`
	Predicted float64       `json:"predicted_makespan_sec"`
	Delta     float64       `json:"delta_sec"`
	Blame     *causal.Blame `json:"blame"`
}

// runSelftest is the CI fidelity gate: the DAG-replayed identity schedule
// must reproduce the simulator's recorded makespan bit-exactly, every
// message must pair, the busy-path scalar must match obs.CriticalPath, and
// the blame decomposition must telescope back to the makespan.
func runSelftest(tf obs.TraceFile, dag *causal.DAG, sched *causal.Schedule, tracePath string) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("selftest %s: "+format, append([]any{tracePath}, args...)...)
	}
	if sched.Makespan != tf.Makespan {
		return fail("identity replay makespan %.17g != recorded %.17g (diff %g)",
			sched.Makespan, tf.Makespan, sched.Makespan-tf.Makespan)
	}
	if dag.Makespan != tf.Makespan {
		return fail("trace max event end %.17g != recorded makespan %.17g", dag.Makespan, tf.Makespan)
	}
	// Per-node fidelity, not just the max: every event must land exactly
	// where the simulator put it.
	for i := range dag.Nodes {
		if got, want := sched.End[i], dag.Nodes[i].Ev.End; got != want {
			return fail("node %d (%s rank %d) replayed end %.17g != observed %.17g",
				i, dag.Nodes[i].Ev.Kind, dag.Nodes[i].Ev.Rank, got, want)
		}
		if sched.Slack[i] < -1e-12 {
			return fail("node %d has negative slack %g", i, sched.Slack[i])
		}
	}
	// Structural closure: a finished run leaves no unmatched messages.
	matcher := causal.NewMatcher()
	for _, n := range dag.Nodes {
		switch n.Ev.Kind.String() {
		case "send", "isend":
			matcher.AddSend(causal.Channel{Src: n.Ev.Rank, Dst: n.Ev.Peer, Tag: n.Ev.Tag}, n.ID)
		case "recv", "wait":
			matcher.AddRecv(causal.Channel{Src: n.Ev.Peer, Dst: n.Ev.Rank, Tag: n.Ev.Tag}, n.ID)
		}
	}
	if s, r := matcher.Unmatched(); s != 0 || r != 0 {
		return fail("unmatched messages: %d sends, %d recvs", s, r)
	}
	// The blame chain telescopes to the makespan up to float summation.
	blame := sched.Blame()
	sum := blame.BusyOnPath + blame.WaitOnPath
	if rel := math.Abs(sum-sched.Makespan) / sched.Makespan; rel > 1e-9 {
		return fail("blame busy+wait %.17g does not telescope to makespan %.17g (rel err %g)",
			sum, sched.Makespan, rel)
	}
	fmt.Printf("selftest ok: %s  p=%d  events=%d  makespan=%.9gs reproduced bit-exactly, %d message edges, chain len %d\n",
		tracePath, tf.P, len(dag.Nodes), sched.Makespan, dag.MsgEdges, blame.ChainLen)
	return nil
}

func fmtSec(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3 && s > -1e-3:
		return fmt.Sprintf("%.2fµs", s*1e6)
	case s < 1 && s > -1:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// Command benchdiff is the regression gate over the repo's machine-readable
// performance artifacts: it compares two BENCH_*.json files (obs/regress)
// or two serialized profiles (obs/profdiff), renders the drift as text,
// markdown or JSON, and exits 1 when anything regressed beyond tolerance.
// Because every metric comes from the bit-reproducible virtual machine, the
// default tolerance is zero — a byte-identical regeneration diffs clean,
// and any drift is a real behavior change.
//
// Usage:
//
//	benchdiff old.json new.json              # text report, exit 1 on regression
//	benchdiff -md -o report.md old new       # markdown artifact for CI
//	benchdiff -tol 'sp-run=0.01' old new     # 1% relative slack for one suite
//	benchdiff -merge out.json in1 in2 ...    # combine bench files into one
//
// The file kind (bench vs profile) is auto-detected from the JSON envelope;
// both sides must be the same kind.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"genmp/internal/obs"
	"genmp/internal/obs/profdiff"
	"genmp/internal/obs/regress"
)

// report is the common surface of both diff kinds.
type report interface {
	HasRegression() bool
	Text() string
	Markdown() string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	rules := regress.Rules{Suite: map[string]regress.Tolerance{}}
	flag.Func("tol", "tolerance rule `REL[,ABS]` or `suite=REL[,ABS]` (REL is a fraction, e.g. 0.01 = 1%); repeatable", func(v string) error {
		return parseTol(&rules, v)
	})
	md := flag.Bool("md", false, "render the report as markdown")
	jsonOut := flag.Bool("json", false, "render the full typed diff as JSON")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	merge := flag.String("merge", "", "merge mode: write the combined bench file to this `path` and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] old.json new.json\n       benchdiff -merge out.json in.json...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *merge != "" {
		if flag.NArg() < 1 {
			log.Println("merge mode needs at least one input file")
			os.Exit(2)
		}
		if err := mergeFiles(*merge, flag.Args()); err != nil {
			log.Println(err)
			os.Exit(2)
		}
		return
	}

	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	rep, err := diffFiles(oldPath, newPath, rules)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}

	var body string
	switch {
	case *jsonOut:
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Println(err)
			os.Exit(2)
		}
		body = string(data) + "\n"
	case *md:
		body = rep.Markdown()
	default:
		body = rep.Text()
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(body), 0o644); err != nil {
			log.Println(err)
			os.Exit(2)
		}
	} else {
		fmt.Print(body)
	}
	if rep.HasRegression() {
		if *out != "" {
			log.Printf("regression detected (report in %s)", *out)
		} else {
			log.Println("regression detected")
		}
		os.Exit(1)
	}
}

// parseTol parses "REL[,ABS]" (sets the default rule) or
// "suite=REL[,ABS]" (per-suite override).
func parseTol(rules *regress.Rules, v string) error {
	suite, spec := "", v
	if i := strings.IndexByte(v, '='); i >= 0 {
		suite, spec = v[:i], v[i+1:]
	}
	parts := strings.SplitN(spec, ",", 2)
	var tol regress.Tolerance
	rel, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil || rel < 0 {
		return fmt.Errorf("bad tolerance %q (want REL[,ABS] with non-negative fractions)", v)
	}
	tol.Rel = rel
	if len(parts) == 2 {
		abs, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil || abs < 0 {
			return fmt.Errorf("bad tolerance %q (want REL[,ABS] with non-negative fractions)", v)
		}
		tol.Abs = abs
	}
	if suite == "" {
		rules.Default = tol
	} else {
		rules.Suite[suite] = tol
	}
	return nil
}

// kindOf sniffs the envelope of a JSON artifact: profile files carry
// "kind": "profile", bench files have no kind field.
func kindOf(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("parse %s: %w", path, err)
	}
	if probe.Kind == "" {
		return "bench", nil
	}
	return probe.Kind, nil
}

// diffFiles loads both sides, auto-detects the artifact kind and runs the
// matching comparison. Profile comparisons use the default tolerance rule
// (profiles are per-run, not per-suite).
func diffFiles(oldPath, newPath string, rules regress.Rules) (report, error) {
	oldKind, err := kindOf(oldPath)
	if err != nil {
		return nil, err
	}
	newKind, err := kindOf(newPath)
	if err != nil {
		return nil, err
	}
	if oldKind != newKind {
		return nil, fmt.Errorf("cannot diff a %s file against a %s file (%s vs %s)", oldKind, newKind, oldPath, newPath)
	}
	switch oldKind {
	case "bench":
		oldBF, err := obs.ReadBenchJSON(oldPath)
		if err != nil {
			return nil, err
		}
		newBF, err := obs.ReadBenchJSON(newPath)
		if err != nil {
			return nil, err
		}
		return regress.Compare(oldBF, newBF, rules), nil
	case obs.ProfileKind:
		oldPF, err := obs.ReadProfileJSON(oldPath)
		if err != nil {
			return nil, err
		}
		newPF, err := obs.ReadProfileJSON(newPath)
		if err != nil {
			return nil, err
		}
		d := profdiff.Compare(oldPF.Profile, newPF.Profile, rules.Default)
		d.OldSource, d.NewSource = oldPF.Source, newPF.Source
		return d, nil
	default:
		return nil, fmt.Errorf("%s: unknown artifact kind %q", oldPath, oldKind)
	}
}

// mergeFiles combines bench files into out, e.g. spbench's Table 1 plus
// sweepbench's strategy comparison into the committed BENCH_results.json.
func mergeFiles(out string, inputs []string) error {
	files := make([]obs.BenchFile, 0, len(inputs))
	for _, path := range inputs {
		bf, err := obs.ReadBenchJSON(path)
		if err != nil {
			return err
		}
		files = append(files, bf)
	}
	merged, err := obs.MergeBenchFiles(files...)
	if err != nil {
		return err
	}
	return obs.WriteBenchJSON(out, merged)
}

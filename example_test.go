package genmp_test

import (
	"fmt"
	"os"

	"genmp"
)

// The paper's flagship capability: a 3-D multipartitioning for a processor
// count that is not a perfect square.
func ExampleOptimalPartitioning() {
	gamma, cost, err := genmp.OptimalPartitioning(12, 3, genmp.UniformObjective(3))
	if err != nil {
		panic(err)
	}
	fmt.Println(gamma, cost)
	// Output: [2 6 6] 14
}

func ExampleNew() {
	m, err := genmp.New(8, []int{4, 4, 2})
	if err != nil {
		panic(err)
	}
	if err := m.Verify(); err != nil {
		panic(err)
	}
	fmt.Println("tiles per processor:", m.TilesPerProc())
	fmt.Println("tiles per slab along x:", m.TilesPerSlab(0))
	// Output:
	// tiles per processor: 4
	// tiles per slab along x: 1
}

func ExampleIsValidPartitioning() {
	// 4×4×2 works for 8 processors (every slab holds a multiple of 8
	// tiles); 4×2×2 does not.
	fmt.Println(genmp.IsValidPartitioning(8, []int{4, 4, 2}))
	fmt.Println(genmp.IsValidPartitioning(8, []int{4, 2, 2}))
	// Output:
	// true
	// false
}

func ExampleJohnsson2D() {
	m, err := genmp.Johnsson2D(3)
	if err != nil {
		panic(err)
	}
	m.RenderSlices(os.Stdout)
	// Output:
	// 0 2 1
	// 1 0 2
	// 2 1 0
}

func ExampleVolumeObjective() {
	// On a skewed domain the optimizer avoids cutting the short dimension
	// (the paper's Section 3.1 remark).
	gamma, _, err := genmp.OptimalPartitioning(4, 3, genmp.VolumeObjective([]int{500, 500, 100}))
	if err != nil {
		panic(err)
	}
	fmt.Println(gamma)
	// Output: [4 4 1]
}

func ExampleMultipartitioning_SweepSchedule() {
	m, err := genmp.New(4, []int{4, 4, 1})
	if err != nil {
		panic(err)
	}
	for _, ph := range m.SweepSchedule(0, 0, false) {
		fmt.Printf("slab %d: %d tile(s), send to %d\n", ph.Slab, len(ph.Tiles), ph.SendTo)
	}
	// Output:
	// slab 0: 1 tile(s), send to 1
	// slab 1: 1 tile(s), send to 1
	// slab 2: 1 tile(s), send to 1
	// slab 3: 1 tile(s), send to -1
}

func ExampleParseHPF() {
	dirs, err := genmp.ParseHPF(`
!HPF$ PROCESSORS P(6)
!HPF$ TEMPLATE T(36, 36, 36)
!HPF$ DISTRIBUTE T(MULTI, MULTI, MULTI) ONTO P
`)
	if err != nil {
		panic(err)
	}
	plan, err := dirs.PlanTemplate("T", nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Multi.Name())
	// Output: generalized 2×3×6 on 6
}

// Package genmp implements generalized multipartitioning of
// multi-dimensional arrays, reproducing Darte, Chavarría-Miranda, Fowler
// and Mellor-Crummey, "Generalized Multipartitioning for Multi-dimensional
// Arrays" (IPDPS 2002).
//
// Multipartitioning is a data-distribution strategy for computations that
// solve 1-D recurrences (line sweeps) along each dimension of a
// d-dimensional array — ADI integration, the NAS SP/BT benchmarks, and
// other implicit methods. A multipartitioning cuts the array into a
// γ₁×…×γ_d grid of tiles and assigns tiles to p processors so that
//
//   - in every slab of tiles along any partitioned dimension, every
//     processor owns the same number of tiles (the balance property), so a
//     sweep keeps all processors busy in every one of its pipeline phases;
//   - for each processor and each coordinate direction, the neighbor tiles
//     of all its tiles belong to a single other processor (the neighbor
//     property), so each sweep phase needs only one aggregated message per
//     processor.
//
// Classical diagonal multipartitionings exist in 3-D only when √p is
// integral. This package implements the paper's generalization to any p
// and d ≥ 2: an optimal tile-grid search driven by a communication cost
// model (paper Section 3) and a constructive modular-mapping assignment of
// tiles to processors (Section 4, Figure 3), valid exactly when every slab
// tile count is a multiple of p.
//
// The top-level API wraps the implementation packages:
//
//   - partitioning search: OptimalPartitioning, ElementaryPartitionings,
//     IsValidPartitioning and the Objective constructors;
//   - mappings: New, NewOptimal, Diagonal, Johnsson2D, GrayCode3D, all
//     returning a *Multipartitioning whose Verify method checks both
//     properties exhaustively;
//   - the Section 3.1 cost model and Section 6 compact-partitioning
//     advisor: CostModel, NewOrigin2000Model.
//
// The runnable examples under examples/ and the cmd/ tools demonstrate the
// distributed execution substrate (virtual-time machine, sweep executors,
// ADI and NAS-SP-style applications) that reproduces the paper's Table 1.
package genmp

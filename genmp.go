package genmp

import (
	"genmp/internal/core"
	"genmp/internal/cost"
	"genmp/internal/hpf"
	"genmp/internal/modmap"
	"genmp/internal/partition"
)

// Objective is the linear cost Σᵢ γᵢ·λᵢ minimized by the partitioning
// search, where γᵢ is the number of cuts along dimension i and λᵢ the
// per-phase cost of communicating along that dimension (paper Section 3.1).
type Objective = partition.Objective

// UniformObjective weights every dimension equally (minimizes the total
// number of computation phases Σγᵢ).
func UniformObjective(d int) Objective { return partition.UniformObjective(d) }

// VolumeObjective weights dimension i by η/ηᵢ (minimizes communicated
// volume; larger dimensions receive relatively more cuts).
func VolumeObjective(eta []int) Objective { return partition.VolumeObjective(eta) }

// MachineObjective is the full Section 3.1 per-phase cost
// λᵢ = K₂ + K₃·η/ηᵢ with start-up cost K₂ and per-element transfer cost K₃.
func MachineObjective(eta []int, k2, k3 float64) Objective {
	return partition.MachineObjective(eta, k2, k3)
}

// IsValidPartitioning reports whether cutting a d-dimensional array into
// the tile grid gamma admits a balanced multipartitioning on p processors:
// for every dimension i, p divides ∏_{j≠i} γⱼ. The paper proves this
// obvious necessary condition is also sufficient.
func IsValidPartitioning(p int, gamma []int) bool { return partition.IsValid(p, gamma) }

// OptimalPartitioning returns a tile grid for p processors over d
// dimensions minimizing obj, via the paper's optimized exhaustive search
// over elementary partitionings, together with its cost.
func OptimalPartitioning(p, d int, obj Objective) (gamma []int, costValue float64, err error) {
	res, err := partition.Optimal(p, d, obj)
	if err != nil {
		return nil, 0, err
	}
	return res.Gamma, res.Cost, nil
}

// ElementaryPartitionings enumerates every elementary partitioning of p
// over d dimensions — the candidates among which an optimal partitioning
// always lies (paper Lemma 1).
func ElementaryPartitionings(p, d int) [][]int { return partition.Elementary(p, d) }

// CountElementaryPartitionings returns the search-space size without
// materializing it.
func CountElementaryPartitionings(p, d int) int { return partition.CountElementary(p, d) }

// Multipartitioning is a tile grid plus a tile-to-processor mapping with
// the balance and neighbor properties; see the methods on
// internal/core.Multipartitioning (Proc, TilesOf, SweepSchedule,
// NeighborProc, Verify, RenderSlices, …).
type Multipartitioning = core.Multipartitioning

// ModularMapping is the paper's Section 4 mapping object: the matrix M and
// modulo vector m⃗ with θ(tile) = (M·tile) mod m⃗.
type ModularMapping = modmap.Mapping

// New builds the generalized multipartitioning for p processors over the
// tile grid gamma (which must be a valid partitioning), using the paper's
// Figure 3 modular-mapping construction.
func New(p int, gamma []int) (*Multipartitioning, error) {
	return core.NewGeneralized(p, gamma)
}

// NewOptimal searches the optimal partitioning under obj and builds its
// generalized multipartitioning.
func NewOptimal(p, d int, obj Objective) (*Multipartitioning, error) {
	return core.NewOptimal(p, d, obj)
}

// Diagonal builds Naik et al.'s diagonal multipartitioning (one tile per
// processor per slab); requires p^(1/(d−1)) integral.
func Diagonal(p, d int) (*Multipartitioning, error) { return core.NewDiagonal(p, d) }

// Johnsson2D builds Johnsson, Saad and Schultz's 2-D latin-square
// multipartitioning θ(i,j) = (i−j) mod p, valid for any p.
func Johnsson2D(p int) (*Multipartitioning, error) { return core.NewJohnsson2D(p) }

// GrayCode3D builds Bruno and Cappello's hypercube multipartitioning of
// 2^k×2^k×2^k tiles on 2^(2k) processors; tiles adjacent along the first
// two dimensions map to hypercube-adjacent processors.
func GrayCode3D(k int) (*Multipartitioning, error) { return core.NewGrayCode3D(k) }

// CostModel is the Section 3.1 analytic execution-time model
// Tᵢ(p) = K₁·η/p + (γᵢ−1)(K₂ + K₃(p)·η/ηᵢ), with the Section 6
// compact-partitioning advisor (Advise).
type CostModel = cost.Model

// NewOrigin2000Model returns constants loosely calibrated to the paper's
// SGI Origin 2000 testbed.
func NewOrigin2000Model() CostModel { return cost.Origin2000() }

// Advice is the outcome of the Section 6 advisor: the processor count and
// partitioning with the smallest modeled time.
type Advice = cost.Advice

// HPFDirectives is a parsed set of HPF directives (PROCESSORS, TEMPLATE,
// DISTRIBUTE with MULTI/BLOCK/*, ALIGN, SHADOW, ON_HOME, LOCAL) — the
// Section 5 front end. Use its PlanTemplate method to turn a MULTI
// distribution into a generalized multipartitioning.
type HPFDirectives = hpf.Directives

// HPFPlan is the runtime distribution planned from a DISTRIBUTE directive.
type HPFPlan = hpf.Plan

// ParseHPF parses HPF directive lines (non-directive lines are ignored, so
// whole Fortran sources can be fed in).
func ParseHPF(src string) (*HPFDirectives, error) { return hpf.Parse(src) }

// MappingAlternatives returns up to max distinct legal tile-to-processor
// mappings for the partitioning (the construction is one of a family; all
// carry the balance and neighbor properties).
func MappingAlternatives(p int, gamma []int, max int) ([]*ModularMapping, error) {
	return modmap.Alternatives(p, gamma, max)
}

package genmp

import (
	"testing"

	"genmp/internal/numutil"
)

func TestFacadeOptimalPartitioning(t *testing.T) {
	gamma, c, err := OptimalPartitioning(8, 3, UniformObjective(3))
	if err != nil {
		t.Fatal(err)
	}
	if !numutil.EqualInts(numutil.SortedCopy(gamma), []int{2, 4, 4}) {
		t.Errorf("γ = %v, want a permutation of [2 4 4]", gamma)
	}
	if c != 10 {
		t.Errorf("cost = %g, want 10", c)
	}
	if !IsValidPartitioning(8, gamma) {
		t.Error("optimal partitioning must be valid")
	}
}

func TestFacadeNewAndVerify(t *testing.T) {
	m, err := New(30, []int{10, 15, 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
	if m.TilesPerProc() != 30 {
		t.Errorf("tiles per proc = %d, want 30", m.TilesPerProc())
	}
}

func TestFacadeNewOptimal(t *testing.T) {
	m, err := NewOptimal(50, 3, VolumeObjective([]int{102, 102, 102}))
	if err != nil {
		t.Fatal(err)
	}
	if got := numutil.SortedCopy(m.Gamma()); !numutil.EqualInts(got, []int{5, 10, 10}) {
		t.Errorf("γ for p=50 on 102³ = %v, want a permutation of [5 10 10]", m.Gamma())
	}
}

func TestFacadePriorArt(t *testing.T) {
	if _, err := Diagonal(16, 3); err != nil {
		t.Error(err)
	}
	if _, err := Diagonal(8, 3); err == nil {
		t.Error("Diagonal(8, 3) should fail")
	}
	if _, err := Johnsson2D(7); err != nil {
		t.Error(err)
	}
	if _, err := GrayCode3D(2); err != nil {
		t.Error(err)
	}
}

func TestFacadeElementary(t *testing.T) {
	if got := len(ElementaryPartitionings(8, 3)); got != 6 {
		t.Errorf("p=8 d=3: %d elementary partitionings, want 6", got)
	}
	if got := CountElementaryPartitionings(30, 3); got != 27 {
		t.Errorf("count = %d, want 27", got)
	}
}

func TestFacadeCostModel(t *testing.T) {
	model := NewOrigin2000Model()
	eta := []int{102, 102, 102}
	adv, err := model.Advise(16, eta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if adv.UseProcs < 1 || adv.UseProcs > 16 {
		t.Errorf("advice %d out of range", adv.UseProcs)
	}
	var _ Advice = adv
}

func TestFacadeHPF(t *testing.T) {
	dirs, err := ParseHPF(`
!HPF$ PROCESSORS P(6)
!HPF$ TEMPLATE T(24, 24, 24)
!HPF$ DISTRIBUTE T(MULTI, MULTI, MULTI) ONTO P
`)
	if err != nil {
		t.Fatal(err)
	}
	var plan *HPFPlan
	plan, err = dirs.PlanTemplate("T", nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Multi == nil || plan.Multi.P() != 6 {
		t.Error("HPF plan should carry a 6-processor multipartitioning")
	}
	if err := plan.Multi.Verify(); err != nil {
		t.Error(err)
	}
}

func TestFacadeMappingAlternatives(t *testing.T) {
	alts, err := MappingAlternatives(16, []int{4, 4, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(alts) < 2 {
		t.Errorf("expected multiple alternatives, got %d", len(alts))
	}
}

func TestFacadeMappingAccess(t *testing.T) {
	m, err := New(16, []int{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	var mm *ModularMapping = m.Mapping()
	if mm == nil {
		t.Fatal("generalized multipartitioning must expose its modular mapping")
	}
	if numutil.Prod(mm.Mod...) != 16 {
		t.Errorf("∏m = %d, want 16", numutil.Prod(mm.Mod...))
	}
}
